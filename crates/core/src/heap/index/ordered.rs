//! Ordered free indexes (A1 leaves *address-ordered list* and
//! *size-ordered tree*).
//!
//! The address-ordered list keeps free blocks sorted by offset — sweeps and
//! address-local placement are cheap, size searches are linear. The
//! size-ordered tree keys blocks by `(len, offset)` — best/exact fit are
//! logarithmic, which is why the soft interdependency arrows point best-fit
//! searchers at it.
//!
//! Both indexes key directly on the span the caller hands to
//! [`FreeIndex::remove`] — the offset→length side lookup the size tree
//! used to carry is gone — and both store the [`BlockRef`] of the backing
//! tiling block as their value, so a hit resolves to the block in O(1).

use std::collections::BTreeMap;

use crate::heap::block::Span;
use crate::heap::index::{Found, FreeIndex};
use crate::heap::tiling::BlockRef;
use crate::space::trees::FitAlgorithm;
use crate::units::POINTER_BYTES;

/// Ordered indexes need no unlink token — removal keys on the span.
const NO_TOKEN: usize = 0;

fn log_cost(n: usize) -> u64 {
    (usize::BITS - n.max(1).leading_zeros()) as u64
}

/// Free list kept sorted by block address.
#[derive(Debug, Clone, Default)]
pub struct AddrIndex {
    by_offset: BTreeMap<usize, (usize, BlockRef)>,
    cursor: Option<usize>,
}

impl AddrIndex {
    /// An empty address-ordered index.
    pub fn new() -> Self {
        AddrIndex::default()
    }
}

impl FreeIndex for AddrIndex {
    fn insert(&mut self, span: Span, block: BlockRef, steps: &mut u64) -> usize {
        *steps += log_cost(self.by_offset.len());
        let dup = self.by_offset.insert(span.offset, (span.len, block));
        debug_assert!(dup.is_none(), "duplicate span at {}", span.offset);
        NO_TOKEN
    }

    fn remove(&mut self, _token: usize, span: Span, steps: &mut u64) -> Option<BlockRef> {
        *steps += log_cost(self.by_offset.len());
        let (len, block) = self.by_offset.remove(&span.offset)?;
        debug_assert_eq!(len, span.len, "span length disagrees with the index");
        if self.cursor == Some(span.offset) {
            self.cursor = self.by_offset.range(span.offset..).next().map(|(o, _)| *o);
        }
        Some(block)
    }

    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Found> {
        let hit = |(&o, &(l, b)): (&usize, &(usize, BlockRef))| Found {
            span: Span::new(o, l),
            block: b,
            token: NO_TOKEN,
        };
        match fit {
            FitAlgorithm::FirstFit => {
                for (o, v) in self.by_offset.iter() {
                    *steps += 1;
                    if v.0 >= len {
                        return Some(hit((o, v)));
                    }
                }
                None
            }
            FitAlgorithm::NextFit => {
                let start = self.cursor.unwrap_or(0);
                let found = self
                    .by_offset
                    .range(start..)
                    .map(|(o, v)| {
                        *steps += 1;
                        (*o, *v)
                    })
                    .find(|&(_, (l, _))| l >= len)
                    .or_else(|| {
                        self.by_offset
                            .range(..start)
                            .map(|(o, v)| {
                                *steps += 1;
                                (*o, *v)
                            })
                            .find(|&(_, (l, _))| l >= len)
                    });
                if let Some((o, (l, b))) = found {
                    self.cursor = Some(o + 1);
                    return Some(Found {
                        span: Span::new(o, l),
                        block: b,
                        token: NO_TOKEN,
                    });
                }
                None
            }
            FitAlgorithm::BestFit => {
                let mut best: Option<Found> = None;
                for (o, v) in self.by_offset.iter() {
                    *steps += 1;
                    if v.0 >= len && best.is_none_or(|b| v.0 < b.span.len) {
                        best = Some(hit((o, v)));
                        if v.0 == len {
                            break;
                        }
                    }
                }
                best
            }
            FitAlgorithm::WorstFit => {
                let mut worst: Option<Found> = None;
                for (o, v) in self.by_offset.iter() {
                    *steps += 1;
                    if v.0 >= len && worst.is_none_or(|w| v.0 > w.span.len) {
                        worst = Some(hit((o, v)));
                    }
                }
                worst
            }
            FitAlgorithm::ExactFit => {
                for (o, v) in self.by_offset.iter() {
                    *steps += 1;
                    if v.0 == len {
                        return Some(hit((o, v)));
                    }
                }
                None
            }
        }
    }

    fn len(&self) -> usize {
        self.by_offset.len()
    }

    fn spans(&self) -> Vec<Span> {
        self.by_offset
            .iter()
            .map(|(&o, &(l, _))| Span::new(o, l))
            .collect()
    }

    fn clear(&mut self) {
        self.by_offset.clear();
        self.cursor = None;
    }

    fn control_overhead_bytes(&self) -> usize {
        POINTER_BYTES // head pointer; links are in-band in free blocks
    }
}

/// Balanced tree of free blocks keyed by `(len, offset)`.
#[derive(Debug, Clone, Default)]
pub struct SizeTreeIndex {
    by_size: BTreeMap<(usize, usize), BlockRef>,
    cursor: Option<(usize, usize)>,
}

impl SizeTreeIndex {
    /// An empty size-ordered index.
    pub fn new() -> Self {
        SizeTreeIndex::default()
    }
}

impl FreeIndex for SizeTreeIndex {
    fn insert(&mut self, span: Span, block: BlockRef, steps: &mut u64) -> usize {
        *steps += log_cost(self.by_size.len());
        let dup = self.by_size.insert((span.len, span.offset), block);
        debug_assert!(dup.is_none(), "duplicate span at {}", span.offset);
        NO_TOKEN
    }

    fn remove(&mut self, _token: usize, span: Span, steps: &mut u64) -> Option<BlockRef> {
        *steps += log_cost(self.by_size.len());
        let block = self.by_size.remove(&(span.len, span.offset))?;
        // `find` parks the NextFit cursor just *past* the block it
        // returned, i.e. at `(len, offset + 1)` — compare against that
        // stored form. Matching the block's own key `(len, offset)` can
        // never fire, so the roving pointer used to survive its block's
        // removal and skip blocks re-inserted at or below that key.
        if self.cursor == Some((span.len, span.offset + 1)) {
            self.cursor = None;
        }
        Some(block)
    }

    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Found> {
        *steps += log_cost(self.by_size.len());
        let found = |(&(l, o), &b): (&(usize, usize), &BlockRef)| Found {
            span: Span::new(o, l),
            block: b,
            token: NO_TOKEN,
        };
        match fit {
            // In a size-ordered structure the "first" block that fits *is*
            // the best fit — a realistic consequence of the A1 choice.
            FitAlgorithm::FirstFit | FitAlgorithm::BestFit => {
                self.by_size.range((len, 0)..).next().map(found)
            }
            FitAlgorithm::NextFit => {
                let start = self.cursor.unwrap_or((len, 0)).max((len, 0));
                let hit = self
                    .by_size
                    .range(start..)
                    .next()
                    .or_else(|| self.by_size.range((len, 0)..).next())
                    .map(found);
                if let Some(f) = hit {
                    self.cursor = Some((f.span.len, f.span.offset + 1));
                }
                hit
            }
            FitAlgorithm::WorstFit => self
                .by_size
                .iter()
                .next_back()
                .map(found)
                .filter(|f| f.span.len >= len),
            FitAlgorithm::ExactFit => self
                .by_size
                .range((len, 0)..(len + 1, 0))
                .next()
                .map(found),
        }
    }

    fn len(&self) -> usize {
        self.by_size.len()
    }

    fn spans(&self) -> Vec<Span> {
        self.by_size
            .keys()
            .map(|&(l, o)| Span::new(o, l))
            .collect()
    }

    fn clear(&mut self) {
        self.by_size.clear();
        self.cursor = None;
    }

    fn control_overhead_bytes(&self) -> usize {
        POINTER_BYTES // root pointer; node links are in-band
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bref(offset: usize) -> BlockRef {
        BlockRef::from_index((offset / 8) as u32)
    }

    #[test]
    fn addr_index_first_fit_is_lowest_address() {
        let mut idx = AddrIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(200, 64), bref(200), &mut s);
        idx.insert(Span::new(0, 64), bref(0), &mut s);
        idx.insert(Span::new(100, 64), bref(100), &mut s);
        let hit = idx.find(FitAlgorithm::FirstFit, 32, &mut s).unwrap();
        assert_eq!(hit.span.offset, 0);
        assert_eq!(hit.block, bref(0));
    }

    #[test]
    fn size_tree_first_fit_equals_best_fit() {
        let mut idx = SizeTreeIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 256), bref(0), &mut s);
        idx.insert(Span::new(256, 32), bref(256), &mut s);
        idx.insert(Span::new(288, 64), bref(288), &mut s);
        let first = idx.find(FitAlgorithm::FirstFit, 48, &mut s).unwrap();
        let best = idx.find(FitAlgorithm::BestFit, 48, &mut s).unwrap();
        assert_eq!(first, best);
        assert_eq!(first.span.len, 64);
    }

    #[test]
    fn size_tree_worst_fit_is_largest() {
        let mut idx = SizeTreeIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 128), bref(0), &mut s);
        idx.insert(Span::new(128, 512), bref(128), &mut s);
        let hit = idx.find(FitAlgorithm::WorstFit, 64, &mut s).unwrap();
        assert_eq!(hit.span.len, 512);
        assert!(idx.find(FitAlgorithm::WorstFit, 1024, &mut s).is_none());
    }

    #[test]
    fn size_tree_exact_fit_misses_close_sizes() {
        let mut idx = SizeTreeIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 64), bref(0), &mut s);
        assert!(idx.find(FitAlgorithm::ExactFit, 63, &mut s).is_none());
        assert!(idx.find(FitAlgorithm::ExactFit, 65, &mut s).is_none());
        assert_eq!(
            idx.find(FitAlgorithm::ExactFit, 64, &mut s).unwrap().span.offset,
            0
        );
    }

    #[test]
    fn addr_index_search_is_linear_tree_is_logarithmic() {
        let mut addr = AddrIndex::new();
        let mut tree = SizeTreeIndex::new();
        let mut s = 0u64;
        for i in 0..1024 {
            addr.insert(Span::new(i * 64, 32), bref(i * 64), &mut s);
            tree.insert(Span::new(i * 64, 32), bref(i * 64), &mut s);
        }
        // Add the only fitting block at the high end.
        addr.insert(Span::new(1024 * 64, 4096), bref(1024 * 64), &mut s);
        tree.insert(Span::new(1024 * 64, 4096), bref(1024 * 64), &mut s);
        let mut addr_steps = 0u64;
        addr.find(FitAlgorithm::BestFit, 4096, &mut addr_steps).unwrap();
        let mut tree_steps = 0u64;
        tree.find(FitAlgorithm::BestFit, 4096, &mut tree_steps).unwrap();
        assert!(addr_steps > 1000, "{addr_steps}");
        assert!(tree_steps < 16, "{tree_steps}");
    }

    #[test]
    fn size_tree_next_fit_cursor_resets_when_its_block_is_removed() {
        let mut idx = SizeTreeIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 64), bref(0), &mut s);
        idx.insert(Span::new(100, 64), bref(100), &mut s);
        // NextFit lands on (64, 0) and parks the cursor at (64, 1).
        let first = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        assert_eq!(first.span.offset, 0);
        // The found block is taken (allocated), then returned (freed) —
        // the remove must invalidate the cursor it derived from, or the
        // roving pointer skips the re-inserted block forever.
        idx.remove(first.token, first.span, &mut s).unwrap();
        idx.insert(Span::new(0, 64), bref(0), &mut s);
        let second = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        assert_eq!(
            second.span.offset, 0,
            "stale cursor skipped the re-inserted block"
        );
    }

    #[test]
    fn size_tree_next_fit_cursor_survives_removal_of_other_blocks() {
        let mut idx = SizeTreeIndex::new();
        let mut s = 0u64;
        for off in [0usize, 100, 200] {
            idx.insert(Span::new(off, 64), bref(off), &mut s);
        }
        let first = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        assert_eq!(first.span.offset, 0);
        // Removing a block the cursor was *not* derived from keeps the
        // roving behaviour: the next search continues past the last hit.
        idx.remove(NO_TOKEN, Span::new(200, 64), &mut s).unwrap();
        let second = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        assert_eq!(second.span.offset, 100, "cursor must keep roving");
    }

    #[test]
    fn remove_returns_block_and_none_for_absent() {
        let mut idx = SizeTreeIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(64, 96), bref(64), &mut s);
        assert_eq!(idx.remove(NO_TOKEN, Span::new(64, 96), &mut s), Some(bref(64)));
        assert_eq!(idx.remove(NO_TOKEN, Span::new(64, 96), &mut s), None);
        assert_eq!(idx.len(), 0);
    }
}
