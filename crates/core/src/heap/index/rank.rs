//! Order-statistic rank/select support for the free indexes.
//!
//! [`PosTree`] is a weight-augmented balanced tree over `(key, weight)`
//! pairs that answers, in O(log n), the questions the faithful free-list
//! walks answer in O(n):
//!
//! - [`PosTree::rank`] — the 1-based position of a key in key order, which
//!   *is* the walk distance when keys are chosen so that key order equals
//!   walk order (link order for the linked slab, address order for the
//!   address-ordered index);
//! - [`PosTree::count_below`] — how many keys precede a bound (the charge
//!   of a walk that terminates early at that bound);
//! - [`PosTree::first_at_least`] / [`PosTree::first_at_least_from`] /
//!   [`PosTree::first_at_least_below`] — the first position in (a range
//!   of) key order whose weight satisfies a fit, i.e. the node a
//!   first/next-fit walk would stop at.
//!
//! # Invariants
//!
//! The tree is a *replica* of its owner's walk order, never the owner
//! itself: every key is inserted exactly when its node becomes reachable
//! by the faithful walk and removed exactly when it stops being reachable,
//! with `weight` equal to the walked node's span length. Under that
//! discipline every rank/select answer is bit-identical to the faithful
//! walk's charge — the owners assert exactly that, per query, in debug
//! builds (see the shadow-oracle notes in `linked.rs` and `ordered.rs`),
//! and [`FreeIndex::check_oracle`](crate::heap::index::FreeIndex::check_oracle)
//! re-validates the whole replica per replay event in debug builds.
//!
//! Balance comes from treap priorities derived deterministically from the
//! key (a splitmix64 hash), so a replay's structure — and therefore its
//! wall-clock — is reproducible run to run. Like the memo tables of the
//! previous revision, the tree is simulator-side acceleration: it is *not*
//! part of the modelled manager, so it contributes nothing to
//! `control_overhead_bytes`.

const NIL: u32 = u32::MAX;

/// Deterministic treap priority: splitmix64 of the key.
fn prio_of(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy)]
struct RankNode {
    key: u64,
    /// Caller payload resolved on selects (the linked slab stores its slot
    /// here; the address index has no use for it and stores 0).
    payload: u32,
    weight: usize,
    max_weight: usize,
    count: u32,
    prio: u64,
    left: u32,
    right: u32,
}

/// An order-statistic tree over `(key, weight)` pairs (see module docs).
#[derive(Debug, Clone)]
pub struct PosTree {
    nodes: Vec<RankNode>,
    free: Vec<u32>,
    root: u32,
}

impl Default for PosTree {
    fn default() -> Self {
        PosTree::new()
    }
}

impl PosTree {
    /// An empty tree.
    pub fn new() -> Self {
        PosTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
        }
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> usize {
        self.count(self.root) as usize
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Remove every key, keeping the allocation.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
    }

    fn count(&self, t: u32) -> u32 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].count
        }
    }

    fn max_weight(&self, t: u32) -> usize {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].max_weight
        }
    }

    fn pull(&mut self, t: u32) {
        let (l, r) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right)
        };
        let count = 1 + self.count(l) + self.count(r);
        let max_weight = self.nodes[t as usize]
            .weight
            .max(self.max_weight(l))
            .max(self.max_weight(r));
        let n = &mut self.nodes[t as usize];
        n.count = count;
        n.max_weight = max_weight;
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let r = self.nodes[a as usize].right;
            let r = self.merge(r, b);
            self.nodes[a as usize].right = r;
            self.pull(a);
            a
        } else {
            let l = self.nodes[b as usize].left;
            let l = self.merge(a, l);
            self.nodes[b as usize].left = l;
            self.pull(b);
            b
        }
    }

    /// Split into (keys `< key`, keys `>= key`).
    fn split(&mut self, t: u32, key: u64) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].key < key {
            let r = self.nodes[t as usize].right;
            let (l, r) = self.split(r, key);
            self.nodes[t as usize].right = l;
            self.pull(t);
            (t, r)
        } else {
            let l = self.nodes[t as usize].left;
            let (l, r) = self.split(l, key);
            self.nodes[t as usize].left = r;
            self.pull(t);
            (l, t)
        }
    }

    /// Insert a key that must not already be present.
    pub fn insert(&mut self, key: u64, weight: usize, payload: u32) {
        debug_assert!(!self.contains(key), "duplicate rank key {key}");
        let node = RankNode {
            key,
            payload,
            weight,
            max_weight: weight,
            count: 1,
            prio: prio_of(key),
            left: NIL,
            right: NIL,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize] = node;
                s
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        let (l, r) = self.split(self.root, key);
        let l = self.merge(l, slot);
        self.root = self.merge(l, r);
    }

    /// Remove a key; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let (l, rest) = self.split(self.root, key);
        let (mid, r) = if key == u64::MAX {
            (rest, NIL)
        } else {
            self.split(rest, key + 1)
        };
        debug_assert!(self.count(mid) <= 1, "keys must be unique");
        let found = mid != NIL;
        if found {
            self.free.push(mid);
        }
        self.root = self.merge(l, r);
        found
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        let mut t = self.root;
        while t != NIL {
            let n = &self.nodes[t as usize];
            t = match key.cmp(&n.key) {
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Greater => n.right,
            };
        }
        false
    }

    /// 1-based position of a *present* key in ascending key order — the
    /// faithful walk's distance to that node.
    pub fn rank(&self, key: u64) -> u64 {
        let mut t = self.root;
        let mut before = 0u64;
        while t != NIL {
            let n = &self.nodes[t as usize];
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => t = n.left,
                std::cmp::Ordering::Equal => return before + self.count(n.left) as u64 + 1,
                std::cmp::Ordering::Greater => {
                    before += self.count(n.left) as u64 + 1;
                    t = n.right;
                }
            }
        }
        debug_assert!(false, "rank of absent key {key}");
        before + 1
    }

    /// Number of keys strictly below `key` (which need not be present) —
    /// the charge of a walk that stops just before that bound.
    pub fn count_below(&self, key: u64) -> u64 {
        let mut t = self.root;
        let mut below = 0u64;
        while t != NIL {
            let n = &self.nodes[t as usize];
            if n.key < key {
                below += self.count(n.left) as u64 + 1;
                t = n.right;
            } else {
                t = n.left;
            }
        }
        below
    }

    /// First key (ascending) whose weight is `>= min_weight`, with its
    /// payload — the node a first-fit walk stops at.
    pub fn first_at_least(&self, min_weight: usize) -> Option<(u64, u32)> {
        self.select_in(self.root, min_weight)
    }

    fn select_in(&self, t: u32, min_weight: usize) -> Option<(u64, u32)> {
        let mut t = t;
        if t == NIL || self.max_weight(t) < min_weight {
            return None;
        }
        loop {
            let n = &self.nodes[t as usize];
            if self.max_weight(n.left) >= min_weight {
                t = n.left;
                continue;
            }
            if n.weight >= min_weight {
                return Some((n.key, n.payload));
            }
            debug_assert_ne!(n.right, NIL, "max_weight promised a fit");
            t = n.right;
        }
    }

    /// First key `>= lo` whose weight is `>= min_weight` — where a roving
    /// walk starting at `lo`'s position stops before wrapping.
    pub fn first_at_least_from(&self, lo: u64, min_weight: usize) -> Option<(u64, u32)> {
        let mut t = self.root;
        while t != NIL {
            let n = &self.nodes[t as usize];
            if self.max_weight(t) < min_weight {
                return None;
            }
            if n.key < lo {
                t = n.right;
                continue;
            }
            // Everything in the left subtree is ≥ lo only partially — it
            // may still contain keys below the bound, so recurse with the
            // bound; the node and right subtree are entirely ≥ lo.
            if let Some(hit) = self.first_from_bounded(n.left, lo, min_weight) {
                return Some(hit);
            }
            if n.weight >= min_weight {
                return Some((n.key, n.payload));
            }
            return self.select_in(n.right, min_weight);
        }
        None
    }

    fn first_from_bounded(&self, t: u32, lo: u64, min_weight: usize) -> Option<(u64, u32)> {
        if t == NIL || self.max_weight(t) < min_weight {
            return None;
        }
        let n = &self.nodes[t as usize];
        if n.key < lo {
            return self.first_from_bounded(n.right, lo, min_weight);
        }
        if let Some(hit) = self.first_from_bounded(n.left, lo, min_weight) {
            return Some(hit);
        }
        if n.weight >= min_weight {
            return Some((n.key, n.payload));
        }
        self.select_in(n.right, min_weight)
    }

    /// First key `< hi` whose weight is `>= min_weight` — where a walk
    /// confined to the positions before `hi` stops.
    pub fn first_at_least_below(&self, hi: u64, min_weight: usize) -> Option<(u64, u32)> {
        self.first_below_bounded(self.root, hi, min_weight)
    }

    fn first_below_bounded(&self, t: u32, hi: u64, min_weight: usize) -> Option<(u64, u32)> {
        if t == NIL || self.max_weight(t) < min_weight {
            return None;
        }
        let n = &self.nodes[t as usize];
        if n.key >= hi {
            return self.first_below_bounded(n.left, hi, min_weight);
        }
        // The left subtree is entirely < hi: unbounded select there first.
        if let Some(hit) = self.select_in(n.left, min_weight) {
            return Some(hit);
        }
        if n.weight >= min_weight {
            return Some((n.key, n.payload));
        }
        self.first_below_bounded(n.right, hi, min_weight)
    }

    /// Visit every `(key, weight, payload)` in ascending key order — the
    /// per-event oracle check compares this against the owner's walk.
    pub fn for_each_in_order(&self, mut f: impl FnMut(u64, usize, u32)) {
        self.in_order(self.root, &mut f);
    }

    fn in_order(&self, t: u32, f: &mut impl FnMut(u64, usize, u32)) {
        if t == NIL {
            return;
        }
        let (l, r) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right)
        };
        self.in_order(l, f);
        {
            let n = &self.nodes[t as usize];
            f(n.key, n.weight, n.payload);
        }
        self.in_order(r, f);
    }
}

/// Packed segment-tree node: live-leaf count in the high 32 bits, maximum
/// leaf weight in the low 32.
const COUNT_ONE: u64 = 1 << 32;
const COUNT_MASK: u64 = !(u32::MAX as u64);

#[inline(always)]
fn seg_combine(a: u64, b: u64) -> u64 {
    // Counts can never carry out of the high half (they are bounded by the
    // leaf count), so the halves add and max independently.
    ((a & COUNT_MASK) + (b & COUNT_MASK)) | u64::from((a as u32).max(b as u32))
}

#[inline(always)]
fn seg_count(v: u64) -> u64 {
    v >> 32
}

#[inline(always)]
fn seg_maxw(v: u64) -> u32 {
    v as u32
}

/// A flat order-statistic structure specialised for *monotonically
/// decreasing* keys — the linked slab's `u64::MAX - seq` push stamps.
///
/// Because each inserted key is strictly smaller than every key before it,
/// the key space maps to a dense, append-only leaf space (`leaf =
/// u64::MAX - key - 1`, i.e. the zero-based push stamp) and the whole tree
/// flattens into one contiguous array of packed `(count, max weight)`
/// nodes: updates walk a root path of adjacent sibling pairs (one cache
/// line per level) instead of chasing treap pointers, which is what makes
/// the per-event rank charges cheaper than the walks they replace.
///
/// Ascending key order == *descending* leaf order, so "first in link
/// order" selects are rightmost-leaf descents and rank/count queries are
/// suffix counts. The public API mirrors [`PosTree`] exactly — same names,
/// same key-space semantics — so the fit-search decompositions written
/// against the treap run unchanged against this structure.
#[derive(Debug, Clone, Default)]
pub struct SeqTree {
    /// `2 * cap` packed nodes; node `i`'s children are `2i` and `2i + 1`,
    /// leaf `l` lives at `cap + l`. Empty until the first insert.
    tree: Vec<u64>,
    /// Caller payload per leaf, append-only (dead leaves keep their stale
    /// payload; the packed count says whether a leaf is live).
    payload: Vec<u32>,
    /// Leaf capacity: a power of two, doubled (with an O(cap) rebuild) when
    /// the append-only leaf space fills.
    cap: usize,
    len: usize,
}

impl SeqTree {
    /// An empty tree.
    pub fn new() -> Self {
        SeqTree::default()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every key, keeping the allocation. The leaf space restarts
    /// from zero, matching the owner slab's restarted push stamps.
    pub fn clear(&mut self) {
        self.tree.fill(0);
        self.payload.clear();
        self.len = 0;
    }

    #[inline(always)]
    fn leaf_of(key: u64) -> usize {
        (u64::MAX - key - 1) as usize
    }

    #[inline(always)]
    fn key_of(leaf: usize) -> u64 {
        u64::MAX - leaf as u64 - 1
    }

    /// Recompute the packed nodes on the path from leaf `l` to the root.
    #[inline(always)]
    fn pull_path(&mut self, l: usize) {
        let mut i = (self.cap + l) >> 1;
        while i >= 1 {
            self.tree[i] = seg_combine(self.tree[2 * i], self.tree[2 * i + 1]);
            i >>= 1;
        }
    }

    /// Double the leaf capacity, keeping leaves in place (the space is
    /// append-only, so existing leaves never move) and rebuilding the
    /// internal levels. Amortised O(1) per insert.
    fn grow(&mut self, need: usize) {
        let old_cap = self.cap;
        let mut cap = if old_cap == 0 { 64 } else { old_cap };
        while cap <= need {
            cap *= 2;
        }
        let mut tree = vec![0u64; 2 * cap];
        tree[cap..cap + old_cap].copy_from_slice(&self.tree[old_cap..2 * old_cap]);
        for i in (1..cap).rev() {
            tree[i] = seg_combine(tree[2 * i], tree[2 * i + 1]);
        }
        self.tree = tree;
        self.cap = cap;
    }

    /// Insert `key` with `weight`. Keys must arrive strictly decreasing —
    /// the linked slab's push-stamp discipline — so each insert appends the
    /// next leaf.
    pub fn insert(&mut self, key: u64, weight: usize, payload: u32) {
        let leaf = Self::leaf_of(key);
        debug_assert_eq!(leaf, self.payload.len(), "seq keys must be monotone");
        debug_assert!(
            u32::try_from(weight).is_ok(),
            "span length {weight} exceeds the packed weight range"
        );
        if leaf >= self.cap {
            self.grow(leaf);
        }
        self.payload.push(payload);
        self.tree[self.cap + leaf] = COUNT_ONE | u64::from(weight as u32);
        self.pull_path(leaf);
        self.len += 1;
    }

    /// Remove `key`, returning whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let leaf = Self::leaf_of(key);
        if leaf >= self.payload.len() || self.tree[self.cap + leaf] == 0 {
            return false;
        }
        self.tree[self.cap + leaf] = 0;
        self.pull_path(leaf);
        self.len -= 1;
        true
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        let leaf = Self::leaf_of(key);
        leaf < self.payload.len() && self.tree[self.cap + leaf] != 0
    }

    /// Count of live leaves strictly greater than `leaf` — i.e. of keys
    /// strictly below `key_of(leaf)` (suffix sum along the root path).
    #[inline(always)]
    fn count_leaves_above(&self, leaf: usize) -> u64 {
        let mut i = self.cap + leaf;
        let mut acc = 0u64;
        while i > 1 {
            if i & 1 == 0 {
                acc += seg_count(self.tree[i + 1]);
            }
            i >>= 1;
        }
        acc
    }

    /// 1-based position of a present key in ascending key order.
    pub fn rank(&self, key: u64) -> u64 {
        debug_assert!(self.contains(key), "rank of an absent key");
        self.count_leaves_above(Self::leaf_of(key)) + 1
    }

    /// Number of keys strictly below `key` (which need not be present).
    pub fn count_below(&self, key: u64) -> u64 {
        if self.cap == 0 {
            return 0;
        }
        let leaf = Self::leaf_of(key);
        if leaf >= self.cap {
            // `key` is below every possible stamp: nothing precedes it.
            return 0;
        }
        self.count_leaves_above(leaf)
    }

    /// Descend from internal node `i` to its rightmost leaf of weight
    /// `>= min_w`. Caller guarantees such a leaf exists under `i`.
    #[inline(always)]
    fn descend_rightmost(&self, mut i: usize, min_w: u32) -> (u64, u32) {
        while i < self.cap {
            i *= 2;
            if seg_maxw(self.tree[i + 1]) >= min_w {
                i += 1;
            }
        }
        let leaf = i - self.cap;
        (Self::key_of(leaf), self.payload[leaf])
    }

    /// Rightmost leaf in `[lo, hi)` with weight `>= min_w`, as
    /// `(key, payload)`. The canonical cover of the range is scanned from
    /// its right end, so the first satisfying node wins.
    fn rightmost_fit_in(&self, lo: usize, hi: usize, min_w: u32) -> Option<(u64, u32)> {
        let mut l = self.cap + lo;
        let mut r = self.cap + hi;
        // Canonical cover: `lefts` in left-to-right order, `rights` in
        // right-to-left order (the scan order we want).
        let mut lefts = [0usize; 64];
        let mut nl = 0;
        let mut rights = [0usize; 64];
        let mut nr = 0;
        while l < r {
            if l & 1 == 1 {
                lefts[nl] = l;
                nl += 1;
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                rights[nr] = r;
                nr += 1;
            }
            l >>= 1;
            r >>= 1;
        }
        for &i in rights[..nr].iter() {
            if seg_maxw(self.tree[i]) >= min_w {
                return Some(self.descend_rightmost(i, min_w));
            }
        }
        for &i in lefts[..nl].iter().rev() {
            if seg_maxw(self.tree[i]) >= min_w {
                return Some(self.descend_rightmost(i, min_w));
            }
        }
        None
    }

    #[inline(always)]
    fn clamp_w(min_weight: usize) -> u32 {
        debug_assert!(
            u32::try_from(min_weight).is_ok(),
            "fit request {min_weight} exceeds the packed weight range"
        );
        min_weight.min(u32::MAX as usize) as u32
    }

    /// First key in ascending key order with weight `>= min_weight` — the
    /// rightmost fitting leaf.
    pub fn first_at_least(&self, min_weight: usize) -> Option<(u64, u32)> {
        if self.cap == 0 {
            return None;
        }
        self.rightmost_fit_in(0, self.cap, Self::clamp_w(min_weight))
    }

    /// First key `>= lo` in ascending key order with weight `>= min_weight`
    /// — the rightmost fitting leaf at or below `lo`'s stamp.
    pub fn first_at_least_from(&self, lo: u64, min_weight: usize) -> Option<(u64, u32)> {
        if self.cap == 0 {
            return None;
        }
        let leaf = Self::leaf_of(lo).min(self.cap - 1);
        self.rightmost_fit_in(0, leaf + 1, Self::clamp_w(min_weight))
    }

    /// First key strictly below `hi` in ascending key order with weight
    /// `>= min_weight` — the rightmost fitting leaf above `hi`'s stamp.
    pub fn first_at_least_below(&self, hi: u64, min_weight: usize) -> Option<(u64, u32)> {
        if self.cap == 0 {
            return None;
        }
        let leaf = Self::leaf_of(hi);
        if leaf + 1 >= self.cap {
            return None;
        }
        self.rightmost_fit_in(leaf + 1, self.cap, Self::clamp_w(min_weight))
    }

    /// Whether the append-only leaf space is full. The owner can either
    /// let the next insert double it ([`SeqTree::insert`] grows
    /// automatically) or — when most leaves are dead — restamp its nodes
    /// and [`SeqTree::reset_with_room_for`] a compact space, which keeps
    /// the tree depth at `log2(live)`-ish instead of `log2(total inserts)`.
    pub fn at_capacity(&self) -> bool {
        self.payload.len() == self.cap
    }

    /// Current leaf capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Empty the tree and restart the leaf space sized for `n` live keys
    /// (with slack so the next compaction is at least `n` inserts away).
    pub fn reset_with_room_for(&mut self, n: usize) {
        let cap = (2 * n).next_power_of_two().max(64);
        if self.tree.len() == 2 * cap {
            self.tree.fill(0);
        } else {
            self.tree = vec![0u64; 2 * cap];
        }
        self.cap = cap;
        self.payload.clear();
        self.len = 0;
    }

    /// Largest live weight, or 0 when empty.
    pub fn max_weight(&self) -> usize {
        if self.cap == 0 {
            0
        } else {
            seg_maxw(self.tree[1]) as usize
        }
    }

    /// The packed count at `key`'s leaf — replica validation hook.
    pub fn leaf_entry(&self, key: u64) -> Option<(usize, u32)> {
        let leaf = Self::leaf_of(key);
        if leaf >= self.payload.len() || self.tree[self.cap + leaf] == 0 {
            return None;
        }
        Some((
            seg_maxw(self.tree[self.cap + leaf]) as usize,
            self.payload[leaf],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flat reference: sorted (key, weight) pairs.
    #[derive(Default)]
    struct RefSet(Vec<(u64, usize)>);

    impl RefSet {
        fn insert(&mut self, key: u64, w: usize) {
            let i = self.0.partition_point(|&(k, _)| k < key);
            self.0.insert(i, (key, w));
        }
        fn remove(&mut self, key: u64) -> bool {
            match self.0.iter().position(|&(k, _)| k == key) {
                Some(i) => {
                    self.0.remove(i);
                    true
                }
                None => false,
            }
        }
        fn rank(&self, key: u64) -> u64 {
            self.0.iter().position(|&(k, _)| k == key).unwrap() as u64 + 1
        }
        fn count_below(&self, key: u64) -> u64 {
            self.0.iter().filter(|&&(k, _)| k < key).count() as u64
        }
        fn first_at_least(&self, w: usize) -> Option<u64> {
            self.0.iter().find(|&&(_, x)| x >= w).map(|&(k, _)| k)
        }
        fn first_from(&self, lo: u64, w: usize) -> Option<u64> {
            self.0
                .iter()
                .find(|&&(k, x)| k >= lo && x >= w)
                .map(|&(k, _)| k)
        }
        fn first_below(&self, hi: u64, w: usize) -> Option<u64> {
            self.0
                .iter()
                .find(|&&(k, x)| k < hi && x >= w)
                .map(|&(k, _)| k)
        }
    }

    #[test]
    fn churned_tree_matches_flat_reference() {
        let mut tree = PosTree::new();
        let mut reference = RefSet::default();
        let mut x: u64 = 0x0123_4567_89AB_CDEF;
        let mut keys: Vec<u64> = Vec::new();
        for round in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if keys.len() < 4 || !x.is_multiple_of(3) {
                let key = x % 1024; // small space forces collisions
                if !tree.contains(key) {
                    let w = 16 + (x >> 32) as usize % 96;
                    tree.insert(key, w, (key % 7) as u32);
                    reference.insert(key, w);
                    keys.push(key);
                }
            } else {
                let i = (x as usize / 5) % keys.len();
                let key = keys.swap_remove(i);
                assert!(tree.remove(key));
                assert!(reference.remove(key));
            }
            assert_eq!(tree.len(), reference.0.len());
            if round % 7 == 0 {
                for probe in [0u64, 13, 512, 1023, x % 1100] {
                    assert_eq!(tree.count_below(probe), reference.count_below(probe));
                    for w in [1usize, 40, 80, 200] {
                        assert_eq!(
                            tree.first_at_least(w).map(|(k, _)| k),
                            reference.first_at_least(w),
                            "first_at_least({w})"
                        );
                        assert_eq!(
                            tree.first_at_least_from(probe, w).map(|(k, _)| k),
                            reference.first_from(probe, w),
                            "first_from({probe},{w})"
                        );
                        assert_eq!(
                            tree.first_at_least_below(probe, w).map(|(k, _)| k),
                            reference.first_below(probe, w),
                            "first_below({probe},{w})"
                        );
                    }
                }
                if let Some(&key) = keys.first() {
                    assert_eq!(tree.rank(key), reference.rank(key));
                }
            }
        }
        // In-order traversal reproduces the reference exactly.
        let mut seen = Vec::new();
        tree.for_each_in_order(|k, w, _| seen.push((k, w)));
        assert_eq!(seen, reference.0);
    }

    #[test]
    fn payload_rides_along() {
        let mut tree = PosTree::new();
        tree.insert(10, 100, 7);
        tree.insert(5, 50, 3);
        assert_eq!(tree.first_at_least(60), Some((10, 7)));
        assert_eq!(tree.first_at_least(1), Some((5, 3)));
        assert_eq!(tree.rank(10), 2);
        assert!(tree.remove(5));
        assert!(!tree.remove(5));
        assert_eq!(tree.rank(10), 1);
    }

    /// SeqTree under the owner slab's discipline (strictly decreasing
    /// keys), cross-checked per op against both the flat reference and the
    /// general-purpose treap.
    #[test]
    fn seq_tree_matches_reference_under_monotone_churn() {
        let mut seq_tree = SeqTree::new();
        let mut treap = PosTree::new();
        let mut reference = RefSet::default();
        let mut live: Vec<u64> = Vec::new();
        let mut seq = 0u64;
        let mut x: u64 = 0xDEAD_BEEF_1234_5678;
        for round in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if live.len() < 4 || !x.is_multiple_of(3) {
                seq += 1;
                let key = u64::MAX - seq;
                let w = 16 + (x >> 32) as usize % 96;
                let p = (seq % 11) as u32;
                seq_tree.insert(key, w, p);
                treap.insert(key, w, p);
                reference.insert(key, w);
                live.push(key);
            } else {
                let i = (x as usize / 5) % live.len();
                let key = live.swap_remove(i);
                assert!(seq_tree.remove(key));
                assert!(!seq_tree.remove(key), "double remove must miss");
                assert!(treap.remove(key));
                assert!(reference.remove(key));
            }
            assert_eq!(seq_tree.len(), reference.0.len());
            assert_eq!(
                seq_tree.max_weight(),
                reference.0.iter().map(|&(_, w)| w).max().unwrap_or(0)
            );
            if round % 5 == 0 {
                let probes = [
                    u64::MAX - 1,
                    u64::MAX - seq.max(1),
                    u64::MAX - seq / 2 - 1,
                    u64::MAX - seq - 40, // below every stamp issued so far
                ];
                for probe in probes {
                    assert_eq!(
                        seq_tree.count_below(probe),
                        reference.count_below(probe),
                        "count_below({probe:#x})"
                    );
                    for w in [1usize, 40, 80, 200] {
                        assert_eq!(
                            seq_tree.first_at_least(w).map(|(k, _)| k),
                            reference.first_at_least(w),
                            "first_at_least({w})"
                        );
                        assert_eq!(
                            seq_tree.first_at_least_from(probe, w),
                            treap.first_at_least_from(probe, w),
                            "first_from({probe:#x},{w})"
                        );
                        assert_eq!(
                            seq_tree.first_at_least_below(probe, w),
                            treap.first_at_least_below(probe, w),
                            "first_below({probe:#x},{w})"
                        );
                    }
                }
                for &key in live.iter().take(8) {
                    assert_eq!(seq_tree.rank(key), reference.rank(key), "rank");
                    assert!(seq_tree.contains(key));
                }
            }
        }
        // Clear restarts the stamp space from zero.
        seq_tree.clear();
        assert!(seq_tree.is_empty());
        seq_tree.insert(u64::MAX - 1, 32, 9);
        assert_eq!(seq_tree.first_at_least(1), Some((u64::MAX - 1, 9)));
        assert_eq!(seq_tree.leaf_entry(u64::MAX - 1), Some((32, 9)));
    }

    #[test]
    fn extreme_keys_are_handled() {
        let mut tree = PosTree::new();
        tree.insert(u64::MAX, 8, 0);
        tree.insert(0, 16, 1);
        assert_eq!(tree.rank(u64::MAX), 2);
        assert_eq!(tree.count_below(u64::MAX), 1);
        assert_eq!(tree.first_at_least_from(u64::MAX, 1), Some((u64::MAX, 0)));
        assert!(tree.remove(u64::MAX));
        assert_eq!(tree.len(), 1);
    }
}
