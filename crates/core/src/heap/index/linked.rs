//! Linked-list free indexes (A1 leaves *singly linked list* and
//! *doubly linked list*), backed by a slab so the simulation is allocation-
//! free on the hot path.
//!
//! The cost model mirrors the real structures: a singly linked list charges
//! a walk for every unlink (it must find the predecessor), while the doubly
//! linked list unlinks in O(1) — which is exactly why immediate coalescing
//! wants it (paper Section 5: "the most simple DDT that allows coalescing
//! and splitting, i.e. double linked list").
//!
//! # Memoised walk distances
//!
//! The slab keeps a size-keyed side table (`size_index`: per-size length
//! counters plus LIFO position stacks, invalidated on every insert/remove)
//! that lets it *compute* the step count of any walk whose charge does not
//! depend on a hit's position in link order:
//!
//! - every **miss** (no node satisfies the fit) is a full-list scan —
//!   charge `len` in one add, return `None` without touching a node;
//! - **best fit without an exact hit** and **worst fit** always scan the
//!   whole list — charge `len`, resolve the winning node from the size
//!   table (the first fitting node in link order is the most recently
//!   inserted live node of the winning size, which is the top of that
//!   size's stack);
//! - an **exact-fit hit** charges the position of the first exact node, so
//!   it walks — but the distance is memoised and reused until the next
//!   insert/remove invalidates it.
//!
//! First/next-fit hits and singly-linked unlinks charge genuine positions
//! and still walk: that is the modelled cost, not an implementation
//! artefact. All charges are bit-identical to the faithful walks.

use std::collections::BTreeMap;

use crate::heap::block::Span;
use crate::heap::index::{Found, FreeIndex};
use crate::heap::tiling::BlockRef;
use crate::space::trees::FitAlgorithm;
use crate::units::POINTER_BYTES;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    span: Span,
    block: BlockRef,
    /// Unique push stamp: identifies this node across slot recycling.
    seq: u64,
    prev: usize,
    next: usize,
    present: bool,
}

/// Per-size bookkeeping: how many live nodes have this exact size, and a
/// LIFO stack of `(slot, seq)` push records. Stale records (their node was
/// unlinked, or the slot recycled) are dropped lazily when the stack is
/// consulted; the top valid record is always the most recently inserted
/// live node of this size — exactly the first one a head-to-tail walk
/// meets, because `push_front` keeps the list in reverse insertion order.
#[derive(Debug, Clone, Default)]
struct SizeBucket {
    count: usize,
    stack: Vec<(usize, u64)>,
}

/// Memo of one exact-fit walk: valid while `generation` is unchanged.
#[derive(Debug, Clone, Copy)]
struct ExactMemo {
    generation: u64,
    len: usize,
    slot: usize,
    dist: u64,
}

/// Slab-backed intrusive list shared by both linked variants.
///
/// The NextFit roving cursor lives here rather than in the index wrappers:
/// only the slab knows when a slot is unlinked or reused, and both events
/// must guard the cursor — an unlinked cursor advances to its successor,
/// and a cursor that somehow still names a slot being handed out by
/// [`LinkedSlab::push_front`] is invalidated instead of silently pointing
/// at the unrelated node now occupying that slot.
#[derive(Debug, Clone)]
struct LinkedSlab {
    nodes: Vec<Node>,
    free_slots: Vec<usize>,
    head: usize,
    len: usize,
    cursor: usize,
    /// Monotonic push stamp source.
    seq: u64,
    /// Bumped on every insert/remove; invalidates position memos.
    generation: u64,
    /// Live sizes → count + LIFO stack. Buckets are removed when their
    /// count reaches zero, so `range` queries only ever see live sizes.
    size_index: BTreeMap<usize, SizeBucket>,
    exact_memo: Option<ExactMemo>,
}

impl Default for LinkedSlab {
    fn default() -> Self {
        LinkedSlab::new()
    }
}

impl LinkedSlab {
    fn new() -> Self {
        LinkedSlab {
            nodes: Vec::new(),
            free_slots: Vec::new(),
            head: NIL,
            len: 0,
            cursor: NIL,
            seq: 0,
            generation: 0,
            size_index: BTreeMap::new(),
            exact_memo: None,
        }
    }

    fn push_front(&mut self, span: Span, block: BlockRef) -> usize {
        self.seq += 1;
        self.generation += 1;
        let node = Node {
            span,
            block,
            seq: self.seq,
            prev: NIL,
            next: self.head,
            present: true,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                // Defence in depth: `unlink` already moves the cursor off
                // any slot it frees, but if the cursor ever names a reused
                // slot it would silently point at this unrelated node —
                // invalidate instead.
                if self.cursor == s {
                    self.cursor = NIL;
                }
                self.nodes[s] = node;
                s
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        self.len += 1;
        let bucket = self.size_index.entry(span.len).or_default();
        bucket.count += 1;
        bucket.stack.push((slot, self.seq));
        // Bound stale records: compact (order-preserving) when the stack
        // outgrows its live population.
        if bucket.stack.len() > 8 && bucket.stack.len() > 2 * bucket.count {
            let nodes = &self.nodes;
            bucket
                .stack
                .retain(|&(s, q)| nodes[s].present && nodes[s].seq == q);
        }
        slot
    }

    fn unlink(&mut self, slot: usize) -> Span {
        let (prev, next, span) = {
            let n = &self.nodes[slot];
            (n.prev, n.next, n.span)
        };
        self.generation += 1;
        if self.cursor == slot {
            self.cursor = next;
        }
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        }
        self.nodes[slot].present = false;
        self.free_slots.push(slot);
        self.len -= 1;
        let bucket = self
            .size_index
            .get_mut(&span.len)
            .expect("unlinked node's size must be counted");
        bucket.count -= 1;
        if bucket.count == 0 {
            // Dropping the bucket drops its (now entirely stale) stack.
            self.size_index.remove(&span.len);
        }
        span
    }

    /// Walk distance from the head to `slot` (for the SLL unlink charge).
    fn walk_distance(&self, slot: usize) -> u64 {
        let mut cur = self.head;
        let mut dist = 0;
        while cur != NIL && cur != slot {
            cur = self.nodes[cur].next;
            dist += 1;
        }
        dist + 1
    }

    /// The most recently inserted live node of exactly `size` — the first
    /// such node a head-to-tail walk meets. O(1) amortised (lazy stack
    /// cleanup).
    fn newest_of_size(&mut self, size: usize) -> Option<usize> {
        let bucket = self.size_index.get_mut(&size)?;
        debug_assert!(bucket.count > 0);
        while let Some(&(slot, seq)) = bucket.stack.last() {
            if self.nodes[slot].present && self.nodes[slot].seq == seq {
                return Some(slot);
            }
            bucket.stack.pop();
        }
        unreachable!("bucket with live count has a live stack record");
    }

    /// Smallest live size `>= len`, if any.
    fn best_size_at_least(&self, len: usize) -> Option<usize> {
        self.size_index.range(len..).next().map(|(&s, _)| s)
    }

    /// Largest live size, if any.
    fn max_size(&self) -> Option<usize> {
        self.size_index.keys().next_back().copied()
    }

    /// Walk to the first node of exactly `len`, charging one step per node
    /// visited (the faithful exact-fit walk), with the distance memoised
    /// until the next insert/remove. Caller guarantees such a node exists.
    fn exact_walk(&mut self, len: usize, steps: &mut u64) -> usize {
        if let Some(m) = self.exact_memo {
            if m.generation == self.generation && m.len == len {
                debug_assert!(self.nodes[m.slot].present && self.nodes[m.slot].span.len == len);
                *steps += m.dist;
                return m.slot;
            }
        }
        let mut cur = self.head;
        let mut dist = 0u64;
        loop {
            debug_assert_ne!(cur, NIL, "exact_walk requires a present size");
            dist += 1;
            if self.nodes[cur].span.len == len {
                self.exact_memo = Some(ExactMemo {
                    generation: self.generation,
                    len,
                    slot: cur,
                    dist,
                });
                *steps += dist;
                return cur;
            }
            cur = self.nodes[cur].next;
        }
    }

    fn iter(&self) -> LinkedIter<'_> {
        LinkedIter {
            slab: self,
            cur: self.head,
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free_slots.clear();
        self.head = NIL;
        self.len = 0;
        self.cursor = NIL;
        self.generation += 1;
        self.size_index.clear();
        self.exact_memo = None;
    }

    fn found(&self, slot: usize) -> Found {
        let n = &self.nodes[slot];
        Found {
            span: n.span,
            block: n.block,
            token: slot,
        }
    }
}

struct LinkedIter<'a> {
    slab: &'a LinkedSlab,
    cur: usize,
}

impl Iterator for LinkedIter<'_> {
    type Item = (usize, Span);

    fn next(&mut self) -> Option<(usize, Span)> {
        if self.cur == NIL {
            return None;
        }
        let slot = self.cur;
        let node = &self.slab.nodes[slot];
        self.cur = node.next;
        Some((slot, node.span))
    }
}

/// Generic fit search over the list's link order. Charges are bit-identical
/// to the faithful node-by-node walks (see the module docs for which cases
/// are computed rather than iterated).
fn search(slab: &mut LinkedSlab, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<usize> {
    match fit {
        FitAlgorithm::FirstFit | FitAlgorithm::NextFit => {
            // Miss fast path. A next-fit miss visits every node exactly
            // once whatever the cursor (cursor→tail, then head→cursor).
            // A first-fit walk, however, terminates early at a parked
            // next-fit cursor (`wrapped && cur == start` below), so its
            // miss charge is only the full scan when no cursor is parked
            // — with one parked, fall through to the faithful walk.
            if slab.best_size_at_least(len).is_none()
                && (fit == FitAlgorithm::NextFit || slab.cursor == NIL)
            {
                *steps += slab.len as u64;
                return None;
            }
            let start = slab.cursor;
            // NextFit: first pass from the cursor, then wrap to the head.
            let mut cur = if fit == FitAlgorithm::NextFit && start != NIL {
                start
            } else {
                slab.head
            };
            let mut wrapped = cur == slab.head;
            loop {
                if cur == NIL {
                    if wrapped {
                        return None;
                    }
                    wrapped = true;
                    cur = slab.head;
                    if cur == NIL {
                        return None;
                    }
                }
                *steps += 1;
                let node = &slab.nodes[cur];
                if node.span.len >= len {
                    return Some(cur);
                }
                cur = node.next;
                if wrapped && cur == start {
                    return None;
                }
            }
        }
        FitAlgorithm::BestFit => {
            // With an exact-size node present the faithful walk stops at
            // the first one (cannot do better than exact): identical to
            // the exact-fit walk, memo included.
            if slab.size_index.contains_key(&len) {
                return Some(slab.exact_walk(len, steps));
            }
            // No exact node: the walk visits every node, and the winner is
            // the first node of the smallest fitting size in link order —
            // the most recent insertion of that size.
            *steps += slab.len as u64;
            let best = slab.best_size_at_least(len)?;
            Some(slab.newest_of_size(best).expect("live size has a node"))
        }
        FitAlgorithm::WorstFit => {
            // The walk always visits every node; the winner is the first
            // node of the largest size in link order.
            *steps += slab.len as u64;
            let max = slab.max_size().filter(|&m| m >= len)?;
            Some(slab.newest_of_size(max).expect("live size has a node"))
        }
        FitAlgorithm::ExactFit => {
            if !slab.size_index.contains_key(&len) {
                // Miss: a full scan found nothing.
                *steps += slab.len as u64;
                return None;
            }
            Some(slab.exact_walk(len, steps))
        }
    }
}

/// A LIFO singly linked free list.
#[derive(Debug, Clone, Default)]
pub struct SllIndex {
    slab: LinkedSlab,
}

impl SllIndex {
    /// An empty singly linked index.
    pub fn new() -> Self {
        SllIndex {
            slab: LinkedSlab::new(),
        }
    }
}

impl FreeIndex for SllIndex {
    fn insert(&mut self, span: Span, block: BlockRef, steps: &mut u64) -> usize {
        *steps += 1; // head insert
        self.slab.push_front(span, block)
    }

    fn remove(&mut self, token: usize, span: Span, steps: &mut u64) -> Option<BlockRef> {
        let node = self.slab.nodes.get(token)?;
        if !node.present || node.span != span {
            return None; // stale token: entry already removed or slot reused
        }
        let block = node.block;
        // A singly linked list must walk to the predecessor to unlink.
        *steps += self.slab.walk_distance(token);
        self.slab.unlink(token);
        Some(block)
    }

    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Found> {
        let slot = search(&mut self.slab, fit, len, steps)?;
        if fit == FitAlgorithm::NextFit {
            self.slab.cursor = self.slab.nodes[slot].next;
        }
        Some(self.slab.found(slot))
    }

    fn len(&self) -> usize {
        self.slab.len
    }

    fn spans(&self) -> Vec<Span> {
        self.slab.iter().map(|(_, s)| s).collect()
    }

    fn clear(&mut self) {
        self.slab.clear();
    }

    fn control_overhead_bytes(&self) -> usize {
        POINTER_BYTES // the head pointer
    }
}

/// A doubly linked free list with O(1) unlink.
#[derive(Debug, Clone, Default)]
pub struct DllIndex {
    slab: LinkedSlab,
}

impl DllIndex {
    /// An empty doubly linked index.
    pub fn new() -> Self {
        DllIndex {
            slab: LinkedSlab::new(),
        }
    }
}

impl FreeIndex for DllIndex {
    fn insert(&mut self, span: Span, block: BlockRef, steps: &mut u64) -> usize {
        *steps += 1;
        self.slab.push_front(span, block)
    }

    fn remove(&mut self, token: usize, span: Span, steps: &mut u64) -> Option<BlockRef> {
        let node = self.slab.nodes.get(token)?;
        if !node.present || node.span != span {
            return None; // stale token: entry already removed or slot reused
        }
        let block = node.block;
        *steps += 1; // O(1) unlink thanks to the back pointer
        self.slab.unlink(token);
        Some(block)
    }

    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Found> {
        let slot = search(&mut self.slab, fit, len, steps)?;
        if fit == FitAlgorithm::NextFit {
            self.slab.cursor = self.slab.nodes[slot].next;
        }
        Some(self.slab.found(slot))
    }

    fn len(&self) -> usize {
        self.slab.len
    }

    fn spans(&self) -> Vec<Span> {
        self.slab.iter().map(|(_, s)| s).collect()
    }

    fn clear(&mut self) {
        self.slab.clear();
    }

    fn control_overhead_bytes(&self) -> usize {
        2 * POINTER_BYTES // head + tail pointers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bref(offset: usize) -> BlockRef {
        BlockRef::from_index((offset / 8) as u32)
    }

    #[test]
    fn sll_remove_charges_walk_dll_does_not() {
        let mut sll = SllIndex::new();
        let mut dll = DllIndex::new();
        let mut s = 0u64;
        let mut sll_t0 = 0;
        let mut dll_t0 = 0;
        for i in 0..10 {
            let t = sll.insert(Span::new(i * 32, 32), bref(i * 32), &mut s);
            if i == 0 {
                sll_t0 = t;
            }
            let t = dll.insert(Span::new(i * 32, 32), bref(i * 32), &mut s);
            if i == 0 {
                dll_t0 = t;
            }
        }
        // Offset 0 was inserted first => it is at the tail (distance 10).
        let mut sll_steps = 0u64;
        sll.remove(sll_t0, Span::new(0, 32), &mut sll_steps).unwrap();
        let mut dll_steps = 0u64;
        dll.remove(dll_t0, Span::new(0, 32), &mut dll_steps).unwrap();
        assert!(sll_steps >= 10, "SLL unlink must walk: {sll_steps}");
        assert_eq!(dll_steps, 1, "DLL unlink is O(1)");
    }

    #[test]
    fn lifo_order_drives_first_fit() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 64), bref(0), &mut s);
        idx.insert(Span::new(64, 128), bref(64), &mut s); // most recent => head
        let found = idx.find(FitAlgorithm::FirstFit, 32, &mut s).unwrap();
        assert_eq!(found.span.offset, 64, "first fit sees the most recent insert");
    }

    #[test]
    fn next_fit_roves() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..4 {
            idx.insert(Span::new(i * 64, 64), bref(i * 64), &mut s);
        }
        // Head order is offsets 192,128,64,0.
        let a = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        let b = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        assert_ne!(a.span.offset, b.span.offset, "next fit advances past its last hit");
    }

    #[test]
    fn next_fit_wraps_around() {
        let mut idx = SllIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 32), bref(0), &mut s);
        idx.insert(Span::new(32, 256), bref(32), &mut s);
        // First call lands on the 256 block (head), cursor moves past it.
        assert_eq!(
            idx.find(FitAlgorithm::NextFit, 100, &mut s).unwrap().span.offset,
            32
        );
        // Only the 256 block fits 100; next fit must wrap to find it again.
        assert_eq!(
            idx.find(FitAlgorithm::NextFit, 100, &mut s).unwrap().span.offset,
            32
        );
    }

    #[test]
    fn next_fit_cursor_survives_remove_then_reinsert() {
        // Remove a node (freeing its slot), then reinsert a different span
        // so push_front reuses that slot. The roving cursor must keep
        // pointing at live nodes: every subsequent NextFit hit is a
        // currently indexed span, and repeated searches cycle over all of
        // them rather than chasing the recycled slot.
        for mk in [
            || Box::new(SllIndex::new()) as Box<dyn FreeIndex>,
            || Box::new(DllIndex::new()) as Box<dyn FreeIndex>,
        ] {
            let mut idx = mk();
            let mut s = 0u64;
            let mut tokens = std::collections::HashMap::new();
            for i in 0..4 {
                let t = idx.insert(Span::new(i * 64, 64), bref(i * 64), &mut s);
                tokens.insert(i * 64, t);
            }
            // Park the cursor mid-list.
            let hit = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
            // Unlink a *different* node than the cursor's, then reuse its
            // slot for a fresh span.
            let victim = (hit.span.offset + 128) % 256;
            idx.remove(tokens[&victim], Span::new(victim, 64), &mut s)
                .unwrap();
            idx.insert(Span::new(1024, 64), bref(1024), &mut s);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..16 {
                let f = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
                assert!(
                    idx.spans().contains(&f.span),
                    "cursor produced a phantom span {:?}",
                    f.span
                );
                seen.insert(f.span.offset);
            }
            assert_eq!(
                seen.len(),
                idx.len(),
                "roving search must still visit every live span"
            );
        }
    }

    #[test]
    fn cursor_survives_removal_of_cursor_block() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..3 {
            idx.insert(Span::new(i * 64, 64), bref(i * 64), &mut s);
        }
        let hit = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        idx.remove(hit.token, hit.span, &mut s).unwrap();
        // Cursor pointed into the removed node's neighbourhood; the next
        // search must still terminate and find something.
        assert!(idx.find(FitAlgorithm::NextFit, 64, &mut s).is_some());
    }

    /// The memoised fast paths must charge and answer exactly what the
    /// faithful walk would: cross-check every fit against a reference
    /// walk on a churned list.
    #[test]
    fn memoised_search_matches_reference_walk() {
        #[derive(Clone)]
        struct RefList(Vec<Span>); // head first
        impl RefList {
            fn search(&self, fit: FitAlgorithm, len: usize) -> (Option<Span>, u64) {
                let mut steps = 0u64;
                match fit {
                    FitAlgorithm::FirstFit => {
                        for s in &self.0 {
                            steps += 1;
                            if s.len >= len {
                                return (Some(*s), steps);
                            }
                        }
                        (None, steps)
                    }
                    FitAlgorithm::BestFit => {
                        let mut best: Option<Span> = None;
                        for s in &self.0 {
                            steps += 1;
                            if s.len >= len && best.is_none_or(|b| s.len < b.len) {
                                best = Some(*s);
                                if s.len == len {
                                    break;
                                }
                            }
                        }
                        (best, steps)
                    }
                    FitAlgorithm::WorstFit => {
                        let mut worst: Option<Span> = None;
                        for s in &self.0 {
                            steps += 1;
                            if s.len >= len && worst.is_none_or(|w| s.len > w.len) {
                                worst = Some(*s);
                            }
                        }
                        (worst, steps)
                    }
                    FitAlgorithm::ExactFit => {
                        for s in &self.0 {
                            steps += 1;
                            if s.len == len {
                                return (Some(*s), steps);
                            }
                        }
                        (None, steps)
                    }
                    FitAlgorithm::NextFit => unreachable!("cursor handled separately"),
                }
            }
        }

        let mut idx = DllIndex::new();
        let mut reference = RefList(Vec::new());
        let mut tokens: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut s = 0u64;
        let mut x: u64 = 0x1234_5678_9ABC_DEF1;
        let mut next_off = 0usize;
        for _ in 0..600 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if reference.0.len() < 3 || !x.is_multiple_of(3) {
                let span = Span::new(next_off, 16 + (x % 9) as usize * 8);
                next_off += 4096;
                let t = idx.insert(span, bref(span.offset), &mut s);
                tokens.insert(span.offset, t);
                reference.0.insert(0, span);
            } else {
                let i = (x as usize / 5) % reference.0.len();
                let span = reference.0.remove(i);
                idx.remove(tokens.remove(&span.offset).unwrap(), span, &mut s)
                    .unwrap();
            }
            // Probe every non-roving fit at several sizes, comparing both
            // the answer and the charge to the reference walk.
            for fit in [
                FitAlgorithm::FirstFit,
                FitAlgorithm::BestFit,
                FitAlgorithm::WorstFit,
                FitAlgorithm::ExactFit,
            ] {
                for len in [16, 40, 48, 64, 88, 512] {
                    let (want, want_steps) = reference.search(fit, len);
                    let mut got_steps = 0u64;
                    let got = idx.find(fit, len, &mut got_steps);
                    assert_eq!(got.map(|f| f.span), want, "{fit:?}/{len}");
                    assert_eq!(got_steps, want_steps, "{fit:?}/{len} charge diverged");
                }
            }
        }
    }

    #[test]
    fn first_fit_miss_with_a_parked_cursor_charges_the_faithful_early_stop() {
        // The faithful first-fit walk terminates at a parked next-fit
        // cursor, so its miss charge is the distance to the cursor, not a
        // full scan — the fast path must not fire in that state. (This is
        // the PR 4 behaviour for mixed NextFit-then-FirstFit searches on
        // one slab, e.g. the segregated larger-class fallback.)
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..4 {
            idx.insert(Span::new(i * 64, 64), bref(i * 64), &mut s);
        }
        // Park the cursor one past the head (head order: 192,128,64,0).
        let hit = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        assert_eq!(hit.span.offset, 192, "next fit starts at the head");
        // Nothing fits 4096: the faithful walk charges head→cursor only.
        let mut miss = 0u64;
        assert!(idx.find(FitAlgorithm::FirstFit, 4096, &mut miss).is_none());
        assert_eq!(miss, 1, "first-fit miss must stop at the parked cursor");
        // A next-fit miss still visits every node exactly once.
        let mut nf_miss = 0u64;
        assert!(idx.find(FitAlgorithm::NextFit, 4096, &mut nf_miss).is_none());
        assert_eq!(nf_miss, 4, "next-fit miss is one full cycle");
    }

    #[test]
    fn exact_memo_reuses_the_walk_distance() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..8 {
            idx.insert(Span::new(i * 64, 16 + (i % 4) * 16), bref(i * 64), &mut s);
        }
        let mut first = 0u64;
        let a = idx.find(FitAlgorithm::ExactFit, 48, &mut first).unwrap();
        let mut second = 0u64;
        let b = idx.find(FitAlgorithm::ExactFit, 48, &mut second).unwrap();
        assert_eq!(a, b, "memo must return the same node");
        assert_eq!(first, second, "memoised charge must equal the walked one");
        // Any mutation invalidates the memo; the re-walk still agrees.
        idx.insert(Span::new(4096, 48), bref(4096), &mut s);
        let mut third = 0u64;
        let c = idx.find(FitAlgorithm::ExactFit, 48, &mut third).unwrap();
        assert_eq!(c.span.offset, 4096, "fresh insert is the new first hit");
        assert_eq!(third, 1, "new head is one step away");
    }
}
