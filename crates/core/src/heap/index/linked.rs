//! Linked-list free indexes (A1 leaves *singly linked list* and
//! *doubly linked list*), backed by a slab so the simulation is allocation-
//! free on the hot path.
//!
//! The cost model mirrors the real structures: a singly linked list charges
//! a walk for every unlink (it must find the predecessor), while the doubly
//! linked list unlinks in O(1) — which is exactly why immediate coalescing
//! wants it (paper Section 5: "the most simple DDT that allows coalescing
//! and splitting, i.e. double linked list").
//!
//! # Rank-computed walk charges
//!
//! Every node is stamped with a monotonically increasing `seq` on insert,
//! and every insert is `push_front` — so **link order is exactly descending
//! `seq`**, and with the rank key `u64::MAX - seq`, ascending key order *is*
//! link order. The slab mirrors its membership into a flat order-statistic
//! segment tree ([`SeqTree`], which exploits exactly that monotone stamp
//! discipline) keyed that way (weight = span length) plus per-size LIFO
//! buckets ([`SizeBuckets`]), which together compute every fit charge
//! without touching a node:
//!
//! - a node's walk distance is `rank(key)` (first/next-fit hits, exact-fit
//!   hits, and the singly-linked unlink charge);
//! - a **miss** full scan charges `len` in one add; a first-fit walk that
//!   terminates early at a parked next-fit cursor charges
//!   `count_below(cursor key)`;
//! - next-fit's two passes (cursor→tail, wrap, head→cursor) decompose into
//!   `first_at_least_from` / `first_at_least_below` selects plus rank
//!   arithmetic;
//! - **best fit without an exact hit** and **worst fit** scan the whole
//!   list (charge `len`) and resolve the winner from the size buckets: the
//!   first fitting node in link order is the smallest key — i.e. the most
//!   recently inserted live node — of the winning size (the bucket's LIFO
//!   top; the largest live size is the rank tree's root max-weight).
//!
//! # Demand-driven replica
//!
//! Everything above is simulator acceleration, so each piece exists only
//! while it earns its maintenance:
//!
//! - **Short lists run bare.** Below [`LinkedSlab::ACTIVATE`] nodes no
//!   replica is maintained at all — push and unlink are pure pointer ops
//!   and every search runs the faithful walk, which over a handful of
//!   nodes is cheaper than any replica lookup. Crossing the threshold
//!   builds the size buckets ([`LinkedSlab::activate`]); shrinking far
//!   below it drops back ([`LinkedSlab::deactivate`], with wide
//!   hysteresis so churn around either edge cannot thrash rebuilds).
//! - **The position tree is query-lazy.** Only rank/select *queries* —
//!   the first/next-fit decompositions, worst-fit max, SLL unlink
//!   positions — read [`SeqTree`]; exact- and best-fit *hit* charges come
//!   off the faithful walk when the tree is down (the walk is the oracle,
//!   so the value is identical and walking costs exactly what it
//!   charges), and misses charge the list length. A configuration that
//!   never issues a rank query — the paper's DRR manager: exact-then-best
//!   fit over a doubly linked list — never pays a tree update. The first
//!   query that needs it triggers [`LinkedSlab::ensure_pos`], which
//!   restamps densely and builds the tree sized to the live list.
//! - **The ordered size set is query-lazy too**: built by the first
//!   best-fit search ([`SizeBuckets::ensure_ordered`]) as a two-level
//!   bitmap over granule-aligned sizes (spilling odd sizes to a
//!   `BTreeSet`), then maintained incrementally on live-size 0↔1
//!   transitions.
//!
//! # Shadow oracle
//!
//! The faithful node-by-node walks stay compiled in ([`walk_search`],
//! [`LinkedSlab::walk_distance`]) and every `find`/SLL `remove` asserts, in
//! debug builds, that the computed answer AND charge are bit-identical to
//! the walk — the same pattern as the boundary-tag `BlockMap` oracle. The
//! replica's structural invariants (tree order == link order, weights ==
//! span lengths, size buckets == live membership) are re-validated per
//! replay event through [`FreeIndex::check_oracle`]. The rank structures
//! are simulator-side acceleration, not part of the modelled manager, so
//! they contribute nothing to `control_overhead_bytes`.

use std::collections::BTreeSet;

use crate::heap::block::Span;
use crate::heap::index::rank::SeqTree;
use crate::heap::index::{Found, FreeIndex};
use crate::heap::tiling::BlockRef;
use crate::space::trees::FitAlgorithm;
use crate::units::POINTER_BYTES;

// Node links are stored as u32 (the slab cannot exceed u32 slots — slot
// payloads in the rank replica are u32 already), so the nil sentinel is
// u32::MAX widened: link reads cast to usize and compare against it.
const NIL: usize = u32::MAX as usize;

/// Rank key for a push stamp: ascending key order == link order.
fn rank_key(seq: u64) -> u64 {
    u64::MAX - seq
}

#[derive(Debug, Clone)]
struct Node {
    span: Span,
    block: BlockRef,
    /// Unique push stamp: identifies this node across slot recycling.
    seq: u64,
    prev: u32,
    next: u32,
    present: bool,
}

/// Ordered live-size set for the best-fit winner lookup: a two-level
/// bitmap over [`SIZE_GRANULE`]-aligned sizes up to [`SIZE_LIMIT`], with a
/// `BTreeSet` spill for sizes the bitmap cannot represent exactly. The
/// bitmap makes the hot operations branch-light: membership flips are two
/// bit ops, and the smallest-size-at-least query is a masked word scan.
#[derive(Debug, Clone)]
struct OrderedSizes {
    /// Bit `w` set iff `words[w] != 0`.
    summary: u64,
    /// Bit `i` of word `i / 64` set iff size `(i + 1) * SIZE_GRANULE` is
    /// live.
    words: [u64; SIZE_WORDS],
    /// Live sizes outside the bitmap's exact domain (unaligned or too
    /// large). Empty for the common aligned workloads.
    large: BTreeSet<usize>,
}

/// Bitmap size granule: the alignment every split/coalesce-produced span
/// length shares in practice.
const SIZE_GRANULE: usize = 8;
/// Bitmap word count; covers sizes up to [`SIZE_LIMIT`].
const SIZE_WORDS: usize = 64;
/// Largest size the bitmap represents exactly.
const SIZE_LIMIT: usize = SIZE_GRANULE * 64 * SIZE_WORDS;

impl Default for OrderedSizes {
    fn default() -> Self {
        OrderedSizes {
            summary: 0,
            words: [0; SIZE_WORDS],
            large: BTreeSet::new(),
        }
    }
}

impl OrderedSizes {
    /// Bit index of `size`, when the bitmap represents it exactly.
    #[inline(always)]
    fn bit_of(size: usize) -> Option<usize> {
        (size.is_multiple_of(SIZE_GRANULE) && (SIZE_GRANULE..=SIZE_LIMIT).contains(&size))
            .then(|| size / SIZE_GRANULE - 1)
    }

    fn insert(&mut self, size: usize) {
        match Self::bit_of(size) {
            Some(i) => {
                self.words[i / 64] |= 1u64 << (i % 64);
                self.summary |= 1u64 << (i / 64);
            }
            None => {
                self.large.insert(size);
            }
        }
    }

    fn remove(&mut self, size: usize) {
        match Self::bit_of(size) {
            Some(i) => {
                let w = i / 64;
                self.words[w] &= !(1u64 << (i % 64));
                if self.words[w] == 0 {
                    self.summary &= !(1u64 << w);
                }
            }
            None => {
                self.large.remove(&size);
            }
        }
    }

    fn contains(&self, size: usize) -> bool {
        match Self::bit_of(size) {
            Some(i) => self.words[i / 64] & (1u64 << (i % 64)) != 0,
            None => self.large.contains(&size),
        }
    }

    fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum::<usize>() + self.large.len()
    }

    /// Smallest live size `>= len`. The bitmap and the spill set are
    /// consulted independently — the spill can hold unaligned sizes below
    /// the bitmap's limit — and the smaller candidate wins.
    fn smallest_at_least(&self, len: usize) -> Option<usize> {
        let small = (len <= SIZE_LIMIT).then(|| self.scan_from(len)).flatten();
        let big = self.large.range(len..).next().copied();
        match (small, big) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// First set bit at or after `len`'s slot, as a size.
    fn scan_from(&self, len: usize) -> Option<usize> {
        let start = len.div_ceil(SIZE_GRANULE).max(1) - 1;
        let (w0, b0) = (start / 64, start % 64);
        let first = self.words[w0] & (!0u64 << b0);
        if first != 0 {
            return Some((w0 * 64 + first.trailing_zeros() as usize + 1) * SIZE_GRANULE);
        }
        let later = if w0 + 1 < 64 {
            self.summary & (!0u64 << (w0 + 1))
        } else {
            0
        };
        if later != 0 {
            let w = later.trailing_zeros() as usize;
            let b = self.words[w].trailing_zeros() as usize;
            return Some((w * 64 + b + 1) * SIZE_GRANULE);
        }
        None
    }
}

/// Per-size LIFO buckets behind a small open-addressed hash table, plus a
/// lazily enabled ordered size set for the best-fit winner lookup.
///
/// Each bucket stacks `(slot, seq)` push records for one size. Unlink
/// decrements the live count and pops any dead records it exposes at the
/// top, so **whenever `live > 0` the top record is the newest live node of
/// that size** — the first one a head-to-tail walk meets — and every
/// `newest_of_size` query is two loads. Buried records go stale in place
/// and are reclaimed when exposed (or by the occasional retain sweep);
/// they are record-keeping only and never consulted while stale.
#[derive(Debug, Clone, Default)]
struct SizeBuckets {
    /// Open-addressed buckets; capacity is a power of two. `size == 0`
    /// marks a never-occupied slot. Buckets whose live count drops to zero
    /// persist (keeping their stack allocation for the size's return) and
    /// are only dropped on rehash.
    slots: Vec<Bucket>,
    /// Occupied buckets, including live == 0 ones.
    occupied: usize,
    /// Live sizes in order, built on the first best-fit search that needs
    /// an ordered winner and maintained incrementally afterwards.
    ordered: Option<Box<OrderedSizes>>,
}

#[derive(Debug, Clone, Default)]
struct Bucket {
    size: usize,
    live: u32,
    stack: Vec<(u32, u64)>,
}

impl SizeBuckets {
    /// Index of `size`'s bucket, or of the empty slot where it belongs.
    /// Callers must ensure the table is non-empty and has a free slot.
    #[inline(always)]
    fn probe(&self, size: usize) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = (size.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & mask;
        loop {
            let s = self.slots[i].size;
            if s == size || s == 0 {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn rehash_grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![Bucket::default(); cap]);
        self.occupied = 0;
        for b in old {
            // Dead buckets (live == 0) hold only stale records: drop them.
            if b.live > 0 {
                let i = self.probe(b.size);
                self.slots[i] = b;
                self.occupied += 1;
            }
        }
    }

    fn on_push(&mut self, size: usize, slot: u32, seq: u64) {
        debug_assert!(size > 0, "free spans are never empty");
        if (self.occupied + 1) * 10 > self.slots.len() * 7 {
            self.rehash_grow();
        }
        let i = self.probe(size);
        let b = &mut self.slots[i];
        if b.size == 0 {
            b.size = size;
            self.occupied += 1;
        }
        b.live += 1;
        b.stack.push((slot, seq));
        if b.live == 1 {
            if let Some(set) = self.ordered.as_mut() {
                set.insert(size);
            }
        }
    }

    /// Settle an unlink of a `size` node. The node is already marked dead
    /// in `nodes`, so popping dead tops here re-establishes the live-top
    /// invariant.
    fn on_unlink(&mut self, size: usize, nodes: &[Node]) {
        let i = self.probe(size);
        let b = &mut self.slots[i];
        debug_assert_eq!(b.size, size, "unlink of an unindexed size");
        debug_assert!(b.live > 0, "unlink of a size with no live nodes");
        b.live -= 1;
        let alive =
            |&(slot, seq): &(u32, u64)| nodes[slot as usize].present && nodes[slot as usize].seq == seq;
        while let Some(top) = b.stack.last() {
            if alive(top) {
                break;
            }
            b.stack.pop();
        }
        // Mostly-stale stacks get compacted so buried records cannot
        // accumulate past a small multiple of the live count.
        if b.stack.len() >= 16 && b.stack.len() >= 4 * b.live as usize {
            b.stack.retain(alive);
        }
        if b.live == 0 {
            if let Some(set) = self.ordered.as_mut() {
                set.remove(size);
            }
        }
    }

    /// The newest live node of exactly `size`, O(1).
    #[inline(always)]
    fn newest(&self, size: usize) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let b = &self.slots[self.probe(size)];
        if b.size != size || b.live == 0 {
            return None;
        }
        Some(b.stack.last().expect("live bucket has a live top").0)
    }

    /// Smallest live size `>= len`. Requires [`SizeBuckets::ensure_ordered`].
    fn best_at_least(&self, len: usize) -> Option<usize> {
        self.ordered
            .as_ref()
            .expect("ordered sizes enabled before a best-fit search")
            .smallest_at_least(len)
    }

    /// Empty every bucket in place, keeping the table and each bucket's
    /// stack allocation for the rebuild that follows. The ordered set is
    /// dropped — the next best-fit search rebuilds it from live buckets.
    fn reset(&mut self) {
        for b in self.slots.iter_mut() {
            b.size = 0;
            b.live = 0;
            b.stack.clear();
        }
        self.occupied = 0;
        self.ordered = None;
    }

    /// Drop every stale record, validating against the nodes' *current*
    /// stamps. First half of the owner's restamp protocol: must run while
    /// the old stamps are still in place.
    fn prune_dead(&mut self, nodes: &[Node]) {
        for b in self.slots.iter_mut().filter(|b| b.size != 0) {
            b.stack.retain(|&(slot, seq)| {
                nodes[slot as usize].present && nodes[slot as usize].seq == seq
            });
            debug_assert_eq!(b.stack.len(), b.live as usize);
        }
    }

    /// Rewrite every (pruned) record's stamp from its node. Second half of
    /// the restamp protocol: runs after the owner reassigned stamps, which
    /// preserves relative order, so each stack stays in push order. The
    /// bucket topology (hash slots, live counts, ordered set) is untouched
    /// — restamping changes no live membership.
    fn restamp(&mut self, nodes: &[Node]) {
        for b in self.slots.iter_mut().filter(|b| b.size != 0) {
            for e in b.stack.iter_mut() {
                e.1 = nodes[e.0 as usize].seq;
            }
        }
    }

    fn ensure_ordered(&mut self) {
        if self.ordered.is_none() {
            let mut set = Box::<OrderedSizes>::default();
            for b in self.slots.iter().filter(|b| b.live > 0) {
                set.insert(b.size);
            }
            self.ordered = Some(set);
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.occupied = 0;
        self.ordered = None;
    }

    /// Validate the buckets against the live-size census from a faithful
    /// list walk.
    fn check(
        &self,
        counts: &std::collections::HashMap<usize, u32>,
        nodes: &[Node],
    ) -> Result<(), String> {
        let mut live_buckets = 0usize;
        for b in self.slots.iter().filter(|b| b.size != 0) {
            let want = counts.get(&b.size).copied().unwrap_or(0);
            if b.live != want {
                return Err(format!(
                    "size bucket {} counts {} live nodes, list has {want}",
                    b.size, b.live
                ));
            }
            let alive = b
                .stack
                .iter()
                .filter(|&&(slot, seq)| {
                    nodes
                        .get(slot as usize)
                        .is_some_and(|n| n.present && n.seq == seq && n.span.len == b.size)
                })
                .count();
            if alive as u32 != b.live {
                return Err(format!(
                    "size bucket {} stack holds {alive} live records for {} live nodes",
                    b.size, b.live
                ));
            }
            if b.live > 0 {
                live_buckets += 1;
                let &(slot, seq) = b.stack.last().ok_or_else(|| {
                    format!("size bucket {} live but its stack is empty", b.size)
                })?;
                let newest = nodes
                    .get(slot as usize)
                    .filter(|n| n.present && n.seq == seq && n.span.len == b.size);
                if newest.is_none() {
                    return Err(format!("size bucket {} has a stale top record", b.size));
                }
            }
        }
        if counts.len() != live_buckets {
            return Err(format!(
                "list walks {} live sizes, buckets hold {live_buckets}",
                counts.len()
            ));
        }
        if let Some(set) = &self.ordered {
            if set.len() != counts.len() || !counts.keys().all(|&s| set.contains(s)) {
                return Err("ordered size set diverged from live sizes".into());
            }
        }
        Ok(())
    }
}

/// Slab-backed intrusive list shared by both linked variants.
///
/// The NextFit roving cursor lives here rather than in the index wrappers:
/// only the slab knows when a slot is unlinked or reused, and both events
/// must guard the cursor — an unlinked cursor advances to its successor,
/// and a cursor that somehow still names a slot being handed out by
/// [`LinkedSlab::push_front`] is invalidated instead of silently pointing
/// at the unrelated node now occupying that slot.
#[derive(Debug, Clone)]
struct LinkedSlab {
    nodes: Vec<Node>,
    free_slots: Vec<usize>,
    head: usize,
    len: usize,
    cursor: usize,
    /// Monotonic push stamp source.
    seq: u64,
    /// Order-statistic replica of the list: key `u64::MAX - seq`
    /// (ascending == link order), weight = span length, payload = slot.
    pos: SeqTree,
    /// Per-size LIFO buckets: each bucket's top is the newest live node of
    /// that size — the first one a head-to-tail walk meets, because
    /// `push_front` keeps the list in reverse insertion order.
    sizes: SizeBuckets,
    /// Whether the rank replica is live. Short lists stay unindexed — the
    /// faithful walk over a handful of nodes is cheaper than keeping the
    /// replica coherent on every push and unlink — and the replica is
    /// built the first time the list reaches [`LinkedSlab::ACTIVATE`]
    /// nodes, then maintained until it shrinks far below the threshold.
    /// Either way every answer and charge is the walk's, bit for bit:
    /// below the threshold the walk runs, above it the rank layer computes
    /// the same values (and debug builds assert so).
    indexed: bool,
    /// Whether the position tree is maintained. Like the ordered size set,
    /// `pos` is demand-driven: only rank/select *queries* (first/next-fit
    /// decompositions, worst-fit max, SLL unlink positions) need it, and a
    /// configuration that never issues one — e.g. exact-then-best fit over
    /// a doubly linked list, where hit charges come off the faithful walk
    /// and miss charges are the list length — never pays its per-push and
    /// per-unlink tree updates. The first query that needs the tree builds
    /// it via [`LinkedSlab::renumber`] and maintenance starts from there.
    pos_live: bool,
}

impl Default for LinkedSlab {
    fn default() -> Self {
        LinkedSlab::new()
    }
}

impl LinkedSlab {
    /// List length at which the rank replica is built. Below this a fit
    /// walk touches at most a few cache lines and beats the replica's
    /// per-operation maintenance; above it walk costs grow linearly while
    /// rank queries stay logarithmic.
    const ACTIVATE: usize = 32;

    fn new() -> Self {
        LinkedSlab {
            nodes: Vec::new(),
            free_slots: Vec::new(),
            head: NIL,
            len: 0,
            cursor: NIL,
            seq: 0,
            pos: SeqTree::new(),
            sizes: SizeBuckets::default(),
            indexed: false,
            pos_live: false,
        }
    }

    /// Restamp every live node with fresh dense stamps (preserving link
    /// order) and rebuild the rank replica in a leaf space sized for the
    /// live count. Run when the append-only stamp space fills and most of
    /// it is dead: the replica's depth and footprint then track the *live*
    /// list, not the total push history. Invisible to the cost model —
    /// ranks are positions in link order, which restamping preserves.
    /// Link order, head to tail, as a slot vector.
    fn link_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            order.push(cur);
            cur = self.nodes[cur].next as usize;
        }
        order
    }

    /// Restamp every live node with fresh dense stamps, tail first so they
    /// ascend toward the head exactly as `push_front`'s do. Invisible to
    /// the cost model — ranks are positions in link order, which
    /// restamping preserves.
    fn restamp_dense(&mut self, order: &[usize]) {
        self.seq = 0;
        for &slot in order.iter().rev() {
            self.seq += 1;
            self.nodes[slot].seq = self.seq;
        }
    }

    /// Rebuild the position tree from freshly densified stamps, in a leaf
    /// space sized for the live count. Must run right after
    /// [`LinkedSlab::restamp_dense`]: the tree's leaves are allotted in
    /// stamp order.
    fn rebuild_pos(&mut self, order: &[usize]) {
        self.pos.reset_with_room_for(order.len());
        for &slot in order.iter().rev() {
            let n = &self.nodes[slot];
            self.pos.insert(rank_key(n.seq), n.span.len, slot as u32);
        }
    }

    /// Build the rank replica's size buckets from the list, restamping
    /// densely. Runs each time the list grows past [`LinkedSlab::ACTIVATE`]
    /// while unindexed; any stale replica state from a previous active
    /// phase is discarded by the rebuild. The position tree stays off
    /// until a query demands it ([`LinkedSlab::ensure_pos`]).
    fn activate(&mut self) {
        debug_assert!(!self.indexed);
        let order = self.link_order();
        self.restamp_dense(&order);
        self.sizes.reset();
        for &slot in order.iter().rev() {
            self.sizes
                .on_push(self.nodes[slot].span.len, slot as u32, self.nodes[slot].seq);
        }
        self.indexed = true;
        self.pos_live = false;
    }

    /// Stop maintaining the replica: the list has shrunk to where faithful
    /// walks are cheaper again. Both structures are left stale in place —
    /// nothing reads them while `indexed` is false, and the next
    /// activation rebuilds them from the list. The wide gap between the
    /// activation and deactivation thresholds keeps churn around either
    /// one from thrashing rebuilds.
    fn deactivate(&mut self) {
        debug_assert!(self.indexed);
        self.indexed = false;
    }

    /// Rebuild the position tree in a leaf space sized for the live count.
    /// Runs on activation, and when the append-only stamp space fills and
    /// most of it is dead: the tree's depth and footprint then track the
    /// *live* list, not the total push history. The size buckets are
    /// pruned and restamped in place — their topology doesn't depend on
    /// the stamps.
    fn renumber(&mut self) {
        // The buckets' stale records can only be recognised while the old
        // stamps are in place, so prune first, restamp last.
        self.sizes.prune_dead(&self.nodes);
        let order = self.link_order();
        self.restamp_dense(&order);
        self.rebuild_pos(&order);
        self.sizes.restamp(&self.nodes);
    }

    /// Build (if not yet maintained) the position tree a rank/select query
    /// is about to read, and keep it maintained from here on.
    fn ensure_pos(&mut self) {
        if self.indexed && !self.pos_live {
            self.renumber();
            self.pos_live = true;
        }
    }

    fn push_front(&mut self, span: Span, block: BlockRef) -> usize {
        // The 4x slack keeps renumbering amortised: at least 3/4 of the
        // leaf space is reclaimed dead stamps, so at least 3x the live
        // count in pushes must elapse before the space can fill again.
        if self.indexed
            && self.pos_live
            && self.pos.at_capacity()
            && 4 * self.len <= self.pos.capacity()
        {
            self.renumber();
        }
        self.seq += 1;
        let node = Node {
            span,
            block,
            seq: self.seq,
            prev: NIL as u32,
            next: self.head as u32,
            present: true,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                // Defence in depth: `unlink` already moves the cursor off
                // any slot it frees, but if the cursor ever names a reused
                // slot it would silently point at this unrelated node —
                // invalidate instead.
                if self.cursor == s {
                    self.cursor = NIL;
                }
                self.nodes[s] = node;
                s
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if self.head != NIL {
            self.nodes[self.head].prev = slot as u32;
        }
        self.head = slot;
        self.len += 1;
        if self.indexed {
            self.sizes.on_push(span.len, slot as u32, self.seq);
            if self.pos_live {
                self.pos.insert(rank_key(self.seq), span.len, slot as u32);
            }
        } else if self.len >= Self::ACTIVATE {
            self.activate();
        }
        slot
    }

    fn unlink(&mut self, slot: usize) -> Span {
        let (prev, next, span, seq) = {
            let n = &self.nodes[slot];
            (n.prev as usize, n.next as usize, n.span, n.seq)
        };
        if self.cursor == slot {
            self.cursor = next;
        }
        if prev != NIL {
            self.nodes[prev].next = next as u32;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev as u32;
        }
        self.nodes[slot].present = false;
        self.free_slots.push(slot);
        self.len -= 1;
        if self.indexed {
            self.sizes.on_unlink(span.len, &self.nodes);
            if self.pos_live {
                let removed = self.pos.remove(rank_key(seq));
                debug_assert!(removed, "unlinked node must be in the rank replica");
            }
            if self.len < Self::ACTIVATE / 8 {
                self.deactivate();
            }
        }
        span
    }

    /// Faithful walk distance from the head to `slot` — the shadow oracle
    /// for [`LinkedSlab::position_of`].
    fn walk_distance(&self, slot: usize) -> u64 {
        let mut cur = self.head;
        let mut dist = 0;
        while cur != NIL && cur != slot {
            cur = self.nodes[cur].next as usize;
            dist += 1;
        }
        dist + 1
    }

    /// 1-based position of a live slot in link order — by rank query once
    /// the replica is live, bit-identical to [`LinkedSlab::walk_distance`].
    fn position_of(&self, slot: usize) -> u64 {
        if !self.indexed || !self.pos_live {
            return self.walk_distance(slot);
        }
        let dist = self.pos.rank(rank_key(self.nodes[slot].seq));
        debug_assert_eq!(dist, self.walk_distance(slot), "rank diverged from walk");
        dist
    }

    /// The most recently inserted live node of exactly `size` — the first
    /// such node a head-to-tail walk meets.
    fn newest_of_size(&self, size: usize) -> Option<usize> {
        self.sizes.newest(size).map(|slot| slot as usize)
    }

    /// The walk charge for hitting `slot` as the first fitting node: its
    /// 1-based position in link order. Answered by rank query when the
    /// position tree is maintained, by the faithful walk itself when not —
    /// the walk *is* the oracle, so the values are identical, and walking
    /// costs exactly what it charges.
    fn hit_distance(&self, slot: usize) -> u64 {
        if self.pos_live {
            let dist = self.pos.rank(rank_key(self.nodes[slot].seq));
            debug_assert_eq!(dist, self.walk_distance(slot), "rank diverged from walk");
            dist
        } else {
            self.walk_distance(slot)
        }
    }

    /// The first node in link order whose size is the smallest live size
    /// `>= len` — the best-fit winner when no exact size is live. Requires
    /// [`LinkedSlab::ensure_ordered_sizes`].
    fn newest_of_best_size(&self, len: usize) -> Option<usize> {
        self.newest_of_size(self.sizes.best_at_least(len)?)
    }

    /// Largest live size, if any — the position tree's root max-weight
    /// (its weights *are* the live span lengths). Indexed only; unindexed
    /// searches walk the list instead.
    fn max_size(&self) -> Option<usize> {
        debug_assert!(self.indexed && self.pos_live);
        match self.pos.max_weight() {
            0 => None,
            m => Some(m),
        }
    }

    /// Build (if not yet built) the ordered live-size set the best-fit
    /// winner lookup reads. The search paths themselves are `&self`, so
    /// the index wrappers call this before any best-fit search.
    fn ensure_ordered_sizes(&mut self) {
        self.sizes.ensure_ordered();
    }

    fn iter(&self) -> LinkedIter<'_> {
        LinkedIter {
            slab: self,
            cur: self.head,
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free_slots.clear();
        self.head = NIL;
        self.len = 0;
        self.cursor = NIL;
        self.seq = 0;
        self.pos.clear();
        self.sizes.clear();
        self.indexed = false;
        self.pos_live = false;
    }

    fn found(&self, slot: usize) -> Found {
        let n = &self.nodes[slot];
        Found {
            span: n.span,
            block: n.block,
            token: slot,
        }
    }

    /// Validate the rank replica against the list itself: every live node
    /// has its leaf (with its span length and slot) in the tree, link order
    /// is strictly descending stamp order (so leaf order == link order),
    /// and the size buckets match live membership exactly.
    fn check_replica(&self) -> Result<(), String> {
        let mut counts: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        let mut walked = 0usize;
        let mut last_seq = u64::MAX;
        for (slot, span) in self.iter() {
            let n = &self.nodes[slot];
            if n.seq >= last_seq {
                return Err(format!(
                    "link order is not descending stamps at slot {slot} (seq {})",
                    n.seq
                ));
            }
            last_seq = n.seq;
            if self.indexed && self.pos_live {
                match self.pos.leaf_entry(rank_key(n.seq)) {
                    Some((w, p)) if w == span.len && p as usize == slot => {}
                    other => {
                        return Err(format!(
                            "rank replica leaf for slot {slot} diverged: {other:?} vs ({}, {slot})",
                            span.len
                        ));
                    }
                }
            }
            *counts.entry(span.len).or_default() += 1;
            walked += 1;
        }
        // While unindexed the position tree is stale by design — nothing
        // reads it — so only its indexed mirror is checked.
        if walked != self.len || (self.indexed && self.pos_live && self.pos.len() != self.len) {
            return Err(format!(
                "list walks {walked} nodes, slab counts {}, rank replica {}",
                self.len,
                self.pos.len()
            ));
        }
        if self.indexed {
            self.sizes.check(&counts, &self.nodes)?;
        }
        if self.cursor != NIL && !self.nodes.get(self.cursor).is_some_and(|n| n.present) {
            return Err(format!("cursor {} names a dead slot", self.cursor));
        }
        Ok(())
    }
}

struct LinkedIter<'a> {
    slab: &'a LinkedSlab,
    cur: usize,
}

impl Iterator for LinkedIter<'_> {
    type Item = (usize, Span);

    fn next(&mut self) -> Option<(usize, Span)> {
        if self.cur == NIL {
            return None;
        }
        let slot = self.cur;
        let node = &self.slab.nodes[slot];
        self.cur = node.next as usize;
        Some((slot, node.span))
    }
}

/// The faithful node-by-node fit walk — the shadow oracle for [`search`].
/// This is the modelled cost: every charge [`search`] computes by rank
/// query must equal what this walk would have charged.
fn walk_search(slab: &LinkedSlab, fit: FitAlgorithm, len: usize) -> (Option<usize>, u64) {
    let mut steps = 0u64;
    match fit {
        FitAlgorithm::FirstFit | FitAlgorithm::NextFit => {
            let start = slab.cursor;
            // NextFit: first pass from the cursor, then wrap to the head.
            let mut cur = if fit == FitAlgorithm::NextFit && start != NIL {
                start
            } else {
                slab.head
            };
            let mut wrapped = cur == slab.head;
            loop {
                if cur == NIL {
                    if wrapped {
                        return (None, steps);
                    }
                    wrapped = true;
                    cur = slab.head;
                    if cur == NIL {
                        return (None, steps);
                    }
                }
                steps += 1;
                let node = &slab.nodes[cur];
                if node.span.len >= len {
                    return (Some(cur), steps);
                }
                cur = node.next as usize;
                if wrapped && cur == start {
                    return (None, steps);
                }
            }
        }
        FitAlgorithm::BestFit => {
            let mut best: Option<usize> = None;
            let mut cur = slab.head;
            while cur != NIL {
                steps += 1;
                let node = &slab.nodes[cur];
                if node.span.len >= len
                    && best.is_none_or(|b| node.span.len < slab.nodes[b].span.len)
                {
                    best = Some(cur);
                    if node.span.len == len {
                        break; // cannot do better than exact
                    }
                }
                cur = node.next as usize;
            }
            (best, steps)
        }
        FitAlgorithm::WorstFit => {
            let mut worst: Option<usize> = None;
            let mut cur = slab.head;
            while cur != NIL {
                steps += 1;
                let node = &slab.nodes[cur];
                if node.span.len >= len
                    && worst.is_none_or(|w| node.span.len > slab.nodes[w].span.len)
                {
                    worst = Some(cur);
                }
                cur = node.next as usize;
            }
            (worst, steps)
        }
        FitAlgorithm::ExactFit => {
            let mut cur = slab.head;
            while cur != NIL {
                steps += 1;
                if slab.nodes[cur].span.len == len {
                    return (Some(cur), steps);
                }
                cur = slab.nodes[cur].next as usize;
            }
            (None, steps)
        }
    }
}

/// Generic fit search over the list's link order, with every charge
/// computed by rank/select query — bit-identical to [`walk_search`] (see
/// the module docs for the decomposition per fit).
fn search(slab: &LinkedSlab, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<usize> {
    if !slab.indexed {
        // Below the activation threshold the faithful walk *is* the
        // implementation: over a handful of nodes it touches fewer cache
        // lines than any replica lookup, and it is the oracle — answer
        // and charge are identical by construction.
        let (slot, walked) = walk_search(slab, fit, len);
        *steps += walked;
        return slot;
    }
    let total = slab.len as u64;
    match fit {
        FitAlgorithm::FirstFit => {
            debug_assert!(slab.pos_live, "first-fit search needs the position tree");
            // A first-fit walk terminates early at a parked next-fit cursor
            // (`wrapped && cur == start` in the faithful walk), so with one
            // parked away from the head it only ever sees the positions
            // before the cursor.
            if slab.cursor == NIL || slab.cursor == slab.head {
                match slab.pos.first_at_least(len) {
                    Some((key, slot)) => {
                        *steps += slab.pos.rank(key);
                        Some(slot as usize)
                    }
                    None => {
                        *steps += total;
                        None
                    }
                }
            } else {
                let ck = rank_key(slab.nodes[slab.cursor].seq);
                match slab.pos.first_at_least_below(ck, len) {
                    Some((key, slot)) => {
                        *steps += slab.pos.rank(key);
                        Some(slot as usize)
                    }
                    None => {
                        *steps += slab.pos.count_below(ck);
                        None
                    }
                }
            }
        }
        FitAlgorithm::NextFit => {
            debug_assert!(slab.pos_live, "next-fit search needs the position tree");
            if slab.cursor == NIL {
                match slab.pos.first_at_least(len) {
                    Some((key, slot)) => {
                        *steps += slab.pos.rank(key);
                        Some(slot as usize)
                    }
                    None => {
                        *steps += total;
                        None
                    }
                }
            } else {
                // Pass 1 covers the cursor position onward; the wrap pass
                // covers the positions before it.
                let ck = rank_key(slab.nodes[slab.cursor].seq);
                let before_cursor = slab.pos.count_below(ck);
                if let Some((key, slot)) = slab.pos.first_at_least_from(ck, len) {
                    *steps += slab.pos.rank(key) - before_cursor;
                    Some(slot as usize)
                } else if let Some((key, slot)) = slab.pos.first_at_least_below(ck, len) {
                    *steps += (total - before_cursor) + slab.pos.rank(key);
                    Some(slot as usize)
                } else {
                    *steps += total;
                    None
                }
            }
        }
        FitAlgorithm::BestFit => {
            // With an exact-size node present the faithful walk stops at
            // the first one (cannot do better than exact).
            if let Some(slot) = slab.newest_of_size(len) {
                *steps += slab.hit_distance(slot);
                return Some(slot);
            }
            // No exact node: the walk visits every node, and the winner is
            // the first node of the smallest fitting size in link order —
            // the most recent insertion of that size.
            *steps += total;
            slab.newest_of_best_size(len)
        }
        FitAlgorithm::WorstFit => {
            // The walk always visits every node; the winner is the first
            // node of the largest size in link order.
            *steps += total;
            let max = slab.max_size().filter(|&m| m >= len)?;
            Some(slab.newest_of_size(max).expect("live size has a node"))
        }
        FitAlgorithm::ExactFit => {
            match slab.newest_of_size(len) {
                Some(slot) => {
                    *steps += slab.hit_distance(slot);
                    Some(slot)
                }
                None => {
                    // Miss: a full scan found nothing.
                    *steps += total;
                    None
                }
            }
        }
    }
}

/// Rank-computed search checked against the faithful walk in debug builds.
fn checked_search(
    slab: &LinkedSlab,
    fit: FitAlgorithm,
    len: usize,
    steps: &mut u64,
) -> Option<usize> {
    let mut charged = 0u64;
    let slot = search(slab, fit, len, &mut charged);
    #[cfg(debug_assertions)]
    {
        let (walk_slot, walk_steps) = walk_search(slab, fit, len);
        debug_assert_eq!(
            (slot, charged),
            (walk_slot, walk_steps),
            "rank-computed {fit:?} search for {len} diverged from the faithful walk"
        );
    }
    *steps += charged;
    slot
}

/// A LIFO singly linked free list.
#[derive(Debug, Clone, Default)]
pub struct SllIndex {
    slab: LinkedSlab,
}

impl SllIndex {
    /// An empty singly linked index.
    pub fn new() -> Self {
        SllIndex {
            slab: LinkedSlab::new(),
        }
    }
}

impl FreeIndex for SllIndex {
    fn insert(&mut self, span: Span, block: BlockRef, steps: &mut u64) -> usize {
        *steps += 1; // head insert
        self.slab.push_front(span, block)
    }

    fn remove(&mut self, token: usize, span: Span, steps: &mut u64) -> Option<BlockRef> {
        let node = self.slab.nodes.get(token)?;
        if !node.present || node.span != span {
            return None; // stale token: entry already removed or slot reused
        }
        let block = node.block;
        // A singly linked list must walk to the predecessor to unlink;
        // the charge is the node's position, computed by rank query.
        self.slab.ensure_pos();
        *steps += self.slab.position_of(token);
        self.slab.unlink(token);
        Some(block)
    }

    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Found> {
        // The search paths are `&slab`: build whatever lazily maintained
        // structure this fit reads before descending. Best fit needs the
        // ordered live-size set; the roving/scanning fits decompose their
        // charges through the position tree.
        match fit {
            FitAlgorithm::BestFit => {
                if self.slab.indexed {
                    self.slab.ensure_ordered_sizes();
                }
            }
            FitAlgorithm::FirstFit | FitAlgorithm::NextFit | FitAlgorithm::WorstFit => {
                self.slab.ensure_pos();
            }
            FitAlgorithm::ExactFit => {}
        }
        let slot = checked_search(&self.slab, fit, len, steps)?;
        if fit == FitAlgorithm::NextFit {
            self.slab.cursor = self.slab.nodes[slot].next as usize;
        }
        Some(self.slab.found(slot))
    }

    fn len(&self) -> usize {
        self.slab.len
    }

    fn spans(&self) -> Vec<Span> {
        self.slab.iter().map(|(_, s)| s).collect()
    }

    fn clear(&mut self) {
        self.slab.clear();
    }

    fn control_overhead_bytes(&self) -> usize {
        POINTER_BYTES // the head pointer
    }

    fn check_oracle(&self) -> Result<(), String> {
        self.slab.check_replica()
    }
}

/// A doubly linked free list with O(1) unlink.
#[derive(Debug, Clone, Default)]
pub struct DllIndex {
    slab: LinkedSlab,
}

impl DllIndex {
    /// An empty doubly linked index.
    pub fn new() -> Self {
        DllIndex {
            slab: LinkedSlab::new(),
        }
    }
}

impl FreeIndex for DllIndex {
    fn insert(&mut self, span: Span, block: BlockRef, steps: &mut u64) -> usize {
        *steps += 1;
        self.slab.push_front(span, block)
    }

    fn remove(&mut self, token: usize, span: Span, steps: &mut u64) -> Option<BlockRef> {
        let node = self.slab.nodes.get(token)?;
        if !node.present || node.span != span {
            return None; // stale token: entry already removed or slot reused
        }
        let block = node.block;
        *steps += 1; // O(1) unlink thanks to the back pointer
        self.slab.unlink(token);
        Some(block)
    }

    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Found> {
        // The search paths are `&slab`: build whatever lazily maintained
        // structure this fit reads before descending. Best fit needs the
        // ordered live-size set; the roving/scanning fits decompose their
        // charges through the position tree.
        match fit {
            FitAlgorithm::BestFit => {
                if self.slab.indexed {
                    self.slab.ensure_ordered_sizes();
                }
            }
            FitAlgorithm::FirstFit | FitAlgorithm::NextFit | FitAlgorithm::WorstFit => {
                self.slab.ensure_pos();
            }
            FitAlgorithm::ExactFit => {}
        }
        let slot = checked_search(&self.slab, fit, len, steps)?;
        if fit == FitAlgorithm::NextFit {
            self.slab.cursor = self.slab.nodes[slot].next as usize;
        }
        Some(self.slab.found(slot))
    }

    fn len(&self) -> usize {
        self.slab.len
    }

    fn spans(&self) -> Vec<Span> {
        self.slab.iter().map(|(_, s)| s).collect()
    }

    fn clear(&mut self) {
        self.slab.clear();
    }

    fn control_overhead_bytes(&self) -> usize {
        2 * POINTER_BYTES // head + tail pointers
    }

    fn check_oracle(&self) -> Result<(), String> {
        self.slab.check_replica()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bref(offset: usize) -> BlockRef {
        BlockRef::from_index((offset / 8) as u32)
    }

    #[test]
    fn sll_remove_charges_walk_dll_does_not() {
        let mut sll = SllIndex::new();
        let mut dll = DllIndex::new();
        let mut s = 0u64;
        let mut sll_t0 = 0;
        let mut dll_t0 = 0;
        for i in 0..10 {
            let t = sll.insert(Span::new(i * 32, 32), bref(i * 32), &mut s);
            if i == 0 {
                sll_t0 = t;
            }
            let t = dll.insert(Span::new(i * 32, 32), bref(i * 32), &mut s);
            if i == 0 {
                dll_t0 = t;
            }
        }
        // Offset 0 was inserted first => it is at the tail (distance 10).
        let mut sll_steps = 0u64;
        sll.remove(sll_t0, Span::new(0, 32), &mut sll_steps).unwrap();
        let mut dll_steps = 0u64;
        dll.remove(dll_t0, Span::new(0, 32), &mut dll_steps).unwrap();
        assert!(sll_steps >= 10, "SLL unlink must walk: {sll_steps}");
        assert_eq!(dll_steps, 1, "DLL unlink is O(1)");
    }

    #[test]
    fn lifo_order_drives_first_fit() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 64), bref(0), &mut s);
        idx.insert(Span::new(64, 128), bref(64), &mut s); // most recent => head
        let found = idx.find(FitAlgorithm::FirstFit, 32, &mut s).unwrap();
        assert_eq!(found.span.offset, 64, "first fit sees the most recent insert");
    }

    #[test]
    fn next_fit_roves() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..4 {
            idx.insert(Span::new(i * 64, 64), bref(i * 64), &mut s);
        }
        // Head order is offsets 192,128,64,0.
        let a = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        let b = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        assert_ne!(a.span.offset, b.span.offset, "next fit advances past its last hit");
    }

    #[test]
    fn next_fit_wraps_around() {
        let mut idx = SllIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 32), bref(0), &mut s);
        idx.insert(Span::new(32, 256), bref(32), &mut s);
        // First call lands on the 256 block (head), cursor moves past it.
        assert_eq!(
            idx.find(FitAlgorithm::NextFit, 100, &mut s).unwrap().span.offset,
            32
        );
        // Only the 256 block fits 100; next fit must wrap to find it again.
        assert_eq!(
            idx.find(FitAlgorithm::NextFit, 100, &mut s).unwrap().span.offset,
            32
        );
    }

    #[test]
    fn next_fit_cursor_survives_remove_then_reinsert() {
        // Remove a node (freeing its slot), then reinsert a different span
        // so push_front reuses that slot. The roving cursor must keep
        // pointing at live nodes: every subsequent NextFit hit is a
        // currently indexed span, and repeated searches cycle over all of
        // them rather than chasing the recycled slot.
        for mk in [
            || Box::new(SllIndex::new()) as Box<dyn FreeIndex>,
            || Box::new(DllIndex::new()) as Box<dyn FreeIndex>,
        ] {
            let mut idx = mk();
            let mut s = 0u64;
            let mut tokens = std::collections::HashMap::new();
            for i in 0..4 {
                let t = idx.insert(Span::new(i * 64, 64), bref(i * 64), &mut s);
                tokens.insert(i * 64, t);
            }
            // Park the cursor mid-list.
            let hit = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
            // Unlink a *different* node than the cursor's, then reuse its
            // slot for a fresh span.
            let victim = (hit.span.offset + 128) % 256;
            idx.remove(tokens[&victim], Span::new(victim, 64), &mut s)
                .unwrap();
            idx.insert(Span::new(1024, 64), bref(1024), &mut s);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..16 {
                let f = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
                assert!(
                    idx.spans().contains(&f.span),
                    "cursor produced a phantom span {:?}",
                    f.span
                );
                seen.insert(f.span.offset);
            }
            assert_eq!(
                seen.len(),
                idx.len(),
                "roving search must still visit every live span"
            );
        }
    }

    #[test]
    fn cursor_survives_removal_of_cursor_block() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..3 {
            idx.insert(Span::new(i * 64, 64), bref(i * 64), &mut s);
        }
        let hit = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        idx.remove(hit.token, hit.span, &mut s).unwrap();
        // Cursor pointed into the removed node's neighbourhood; the next
        // search must still terminate and find something.
        assert!(idx.find(FitAlgorithm::NextFit, 64, &mut s).is_some());
    }

    /// The rank-computed fast paths must charge and answer exactly what
    /// the faithful walk would: cross-check every fit — and the SLL unlink
    /// charge — against an independent flat reference on a churned list.
    #[test]
    fn computed_search_matches_reference_walk() {
        #[derive(Clone)]
        struct RefList(Vec<Span>); // head first
        impl RefList {
            fn search(&self, fit: FitAlgorithm, len: usize) -> (Option<Span>, u64) {
                let mut steps = 0u64;
                match fit {
                    FitAlgorithm::FirstFit => {
                        for s in &self.0 {
                            steps += 1;
                            if s.len >= len {
                                return (Some(*s), steps);
                            }
                        }
                        (None, steps)
                    }
                    FitAlgorithm::BestFit => {
                        let mut best: Option<Span> = None;
                        for s in &self.0 {
                            steps += 1;
                            if s.len >= len && best.is_none_or(|b| s.len < b.len) {
                                best = Some(*s);
                                if s.len == len {
                                    break;
                                }
                            }
                        }
                        (best, steps)
                    }
                    FitAlgorithm::WorstFit => {
                        let mut worst: Option<Span> = None;
                        for s in &self.0 {
                            steps += 1;
                            if s.len >= len && worst.is_none_or(|w| s.len > w.len) {
                                worst = Some(*s);
                            }
                        }
                        (worst, steps)
                    }
                    FitAlgorithm::ExactFit => {
                        for s in &self.0 {
                            steps += 1;
                            if s.len == len {
                                return (Some(*s), steps);
                            }
                        }
                        (None, steps)
                    }
                    FitAlgorithm::NextFit => unreachable!("cursor handled separately"),
                }
            }
        }

        // The DLL carries the fit probes; a mirrored SLL cross-checks the
        // position-charged unlinks against the reference index.
        let mut idx = DllIndex::new();
        let mut sll = SllIndex::new();
        let mut reference = RefList(Vec::new());
        let mut tokens: std::collections::HashMap<usize, (usize, usize)> =
            std::collections::HashMap::new();
        let mut s = 0u64;
        let mut x: u64 = 0x1234_5678_9ABC_DEF1;
        let mut next_off = 0usize;
        for _ in 0..600 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if reference.0.len() < 3 || !x.is_multiple_of(3) {
                let span = Span::new(next_off, 16 + (x % 9) as usize * 8);
                next_off += 4096;
                let t = idx.insert(span, bref(span.offset), &mut s);
                let t_sll = sll.insert(span, bref(span.offset), &mut s);
                tokens.insert(span.offset, (t, t_sll));
                reference.0.insert(0, span);
            } else {
                let i = (x as usize / 5) % reference.0.len();
                let span = reference.0.remove(i);
                let (t, t_sll) = tokens.remove(&span.offset).unwrap();
                idx.remove(t, span, &mut s).unwrap();
                // The SLL unlink charge is the node's 1-based position in
                // link order — which is its index in the flat reference.
                let mut unlink = 0u64;
                sll.remove(t_sll, span, &mut unlink).unwrap();
                assert_eq!(unlink, i as u64 + 1, "SLL unlink charge diverged");
            }
            // Probe every non-roving fit at several sizes, comparing both
            // the answer and the charge to the reference walk. (NextFit is
            // covered by the in-find walk oracle via the roving tests.)
            for fit in [
                FitAlgorithm::FirstFit,
                FitAlgorithm::BestFit,
                FitAlgorithm::WorstFit,
                FitAlgorithm::ExactFit,
            ] {
                for len in [16, 40, 48, 64, 88, 512] {
                    let (want, want_steps) = reference.search(fit, len);
                    let mut got_steps = 0u64;
                    let got = idx.find(fit, len, &mut got_steps);
                    assert_eq!(got.map(|f| f.span), want, "{fit:?}/{len}");
                    assert_eq!(got_steps, want_steps, "{fit:?}/{len} charge diverged");
                }
            }
            idx.check_oracle().unwrap();
            sll.check_oracle().unwrap();
        }
    }

    #[test]
    fn first_fit_miss_with_a_parked_cursor_charges_the_faithful_early_stop() {
        // The faithful first-fit walk terminates at a parked next-fit
        // cursor, so its miss charge is the distance to the cursor, not a
        // full scan — the fast path must not fire in that state. (This is
        // the PR 4 behaviour for mixed NextFit-then-FirstFit searches on
        // one slab, e.g. the segregated larger-class fallback.)
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..4 {
            idx.insert(Span::new(i * 64, 64), bref(i * 64), &mut s);
        }
        // Park the cursor one past the head (head order: 192,128,64,0).
        let hit = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        assert_eq!(hit.span.offset, 192, "next fit starts at the head");
        // Nothing fits 4096: the faithful walk charges head→cursor only.
        let mut miss = 0u64;
        assert!(idx.find(FitAlgorithm::FirstFit, 4096, &mut miss).is_none());
        assert_eq!(miss, 1, "first-fit miss must stop at the parked cursor");
        // A next-fit miss still visits every node exactly once.
        let mut nf_miss = 0u64;
        assert!(idx.find(FitAlgorithm::NextFit, 4096, &mut nf_miss).is_none());
        assert_eq!(nf_miss, 4, "next-fit miss is one full cycle");
    }

    #[test]
    fn exact_fit_rank_matches_the_walk_distance() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..8 {
            idx.insert(Span::new(i * 64, 16 + (i % 4) * 16), bref(i * 64), &mut s);
        }
        let mut first = 0u64;
        let a = idx.find(FitAlgorithm::ExactFit, 48, &mut first).unwrap();
        let mut second = 0u64;
        let b = idx.find(FitAlgorithm::ExactFit, 48, &mut second).unwrap();
        assert_eq!(a, b, "repeated search must return the same node");
        assert_eq!(first, second, "computed charge must be stable");
        assert_eq!(first, 2, "newest 48-byte node sits one past the head");
        // A fresh exact insert becomes the new first hit, one step away.
        idx.insert(Span::new(4096, 48), bref(4096), &mut s);
        let mut third = 0u64;
        let c = idx.find(FitAlgorithm::ExactFit, 48, &mut third).unwrap();
        assert_eq!(c.span.offset, 4096, "fresh insert is the new first hit");
        assert_eq!(third, 1, "new head is one step away");
    }

    /// Grow past the activation threshold so the rank replica builds, then
    /// churn it hard enough to force stamp-space renumbering. Every find in
    /// a debug build cross-checks answer AND charge against the faithful
    /// walk, so this drives the full indexed lifecycle through the oracle:
    /// activation restamp, per-op maintenance, renumber, and the replica
    /// structural check.
    #[test]
    fn rank_replica_lifecycle_tracks_the_walk() {
        let mut dll = DllIndex::new();
        let mut sll = SllIndex::new();
        let mut s = 0u64;
        let size = |i: usize| 16 + (i % 7) * 16;
        let mut tokens = Vec::new();
        for i in 0..100 {
            let span = Span::new(i * 256, size(i));
            tokens.push((dll.insert(span, bref(i * 256), &mut s), span));
            sll.insert(span, bref(i * 256), &mut s);
        }
        assert!(dll.slab.indexed, "100 nodes must activate the replica");
        for fit in [
            FitAlgorithm::FirstFit,
            FitAlgorithm::NextFit,
            FitAlgorithm::BestFit,
            FitAlgorithm::WorstFit,
            FitAlgorithm::ExactFit,
        ] {
            for want in [16, 48, 112, 200] {
                dll.find(fit, want, &mut s);
                sll.find(fit, want, &mut s);
            }
        }
        // Unlink every other node (SLL removes charge their position by
        // rank — position_of debug-asserts against the walk distance).
        for (t, span) in tokens.iter().step_by(2) {
            assert!(dll.remove(*t, *span, &mut s).is_some());
            let mut walk = 0u64;
            if let Some(f) = sll.find(FitAlgorithm::ExactFit, span.len, &mut walk) {
                sll.remove(f.token, f.span, &mut s);
            }
        }
        // Churn until the stamp space fills at a mostly-dead leaf range,
        // forcing at least one renumber (activation capacity is 256 leaves
        // for ~200 stamps; each push-and-remove pair burns a fresh stamp).
        for i in 0..2000 {
            let span = Span::new(1 << 20 | (i * 256), size(i));
            let t = dll.insert(span, bref(1 << 20 | (i * 256)), &mut s);
            let f = dll.find(FitAlgorithm::ExactFit, span.len, &mut s).unwrap();
            assert_eq!(f.token, t, "fresh exact push is the newest of its size");
            dll.remove(t, span, &mut s).unwrap();
        }
        dll.check_oracle().expect("replica survives churn");
        sll.check_oracle().expect("sll replica survives removals");
    }
}
