//! Linked-list free indexes (A1 leaves *singly linked list* and
//! *doubly linked list*), backed by a slab so the simulation is allocation-
//! free on the hot path.
//!
//! The cost model mirrors the real structures: a singly linked list charges
//! a walk for every unlink (it must find the predecessor), while the doubly
//! linked list unlinks in O(1) — which is exactly why immediate coalescing
//! wants it (paper Section 5: "the most simple DDT that allows coalescing
//! and splitting, i.e. double linked list").

use std::collections::HashMap;

use crate::heap::block::Span;
use crate::heap::index::FreeIndex;
use crate::space::trees::FitAlgorithm;
use crate::units::POINTER_BYTES;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    span: Span,
    prev: usize,
    next: usize,
}

/// Slab-backed intrusive list shared by both linked variants.
///
/// The NextFit roving cursor lives here rather than in the index wrappers:
/// only the slab knows when a slot is unlinked or reused, and both events
/// must guard the cursor — an unlinked cursor advances to its successor,
/// and a cursor that somehow still names a slot being handed out by
/// [`LinkedSlab::push_front`] is invalidated instead of silently pointing
/// at the unrelated node now occupying that slot.
#[derive(Debug, Clone)]
struct LinkedSlab {
    nodes: Vec<Node>,
    free_slots: Vec<usize>,
    by_offset: HashMap<usize, usize>,
    head: usize,
    len: usize,
    cursor: usize,
}

impl Default for LinkedSlab {
    fn default() -> Self {
        LinkedSlab::new()
    }
}

impl LinkedSlab {
    fn new() -> Self {
        LinkedSlab {
            nodes: Vec::new(),
            free_slots: Vec::new(),
            by_offset: HashMap::new(),
            head: NIL,
            len: 0,
            cursor: NIL,
        }
    }

    fn push_front(&mut self, span: Span) {
        let node = Node {
            span,
            prev: NIL,
            next: self.head,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                // Defence in depth: `unlink` already moves the cursor off
                // any slot it frees, but if the cursor ever names a reused
                // slot it would silently point at this unrelated node —
                // invalidate instead.
                if self.cursor == s {
                    self.cursor = NIL;
                }
                self.nodes[s] = node;
                s
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        let dup = self.by_offset.insert(span.offset, slot);
        debug_assert!(dup.is_none(), "duplicate span at offset {}", span.offset);
        self.len += 1;
    }

    fn unlink(&mut self, slot: usize) -> Span {
        let (prev, next, span) = {
            let n = &self.nodes[slot];
            (n.prev, n.next, n.span)
        };
        if self.cursor == slot {
            self.cursor = next;
        }
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        }
        self.by_offset.remove(&span.offset);
        self.free_slots.push(slot);
        self.len -= 1;
        span
    }

    /// Walk distance from the head to `slot` (for the SLL unlink charge).
    fn walk_distance(&self, slot: usize) -> u64 {
        let mut cur = self.head;
        let mut dist = 0;
        while cur != NIL && cur != slot {
            cur = self.nodes[cur].next;
            dist += 1;
        }
        dist + 1
    }

    fn iter(&self) -> LinkedIter<'_> {
        LinkedIter {
            slab: self,
            cur: self.head,
        }
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.free_slots.clear();
        self.by_offset.clear();
        self.head = NIL;
        self.len = 0;
        self.cursor = NIL;
    }
}

struct LinkedIter<'a> {
    slab: &'a LinkedSlab,
    cur: usize,
}

impl Iterator for LinkedIter<'_> {
    type Item = (usize, Span);

    fn next(&mut self) -> Option<(usize, Span)> {
        if self.cur == NIL {
            return None;
        }
        let slot = self.cur;
        let node = &self.slab.nodes[slot];
        self.cur = node.next;
        Some((slot, node.span))
    }
}

/// Generic fit search over the list's link order.
fn search(
    slab: &LinkedSlab,
    fit: FitAlgorithm,
    len: usize,
    start: usize,
    steps: &mut u64,
) -> Option<usize> {
    match fit {
        FitAlgorithm::FirstFit | FitAlgorithm::NextFit => {
            // NextFit: first pass from `start`, then wrap to the head.
            let mut cur = if fit == FitAlgorithm::NextFit && start != NIL {
                start
            } else {
                slab.head
            };
            let mut wrapped = cur == slab.head;
            loop {
                if cur == NIL {
                    if wrapped {
                        return None;
                    }
                    wrapped = true;
                    cur = slab.head;
                    if cur == NIL {
                        return None;
                    }
                }
                *steps += 1;
                let node = &slab.nodes[cur];
                if node.span.len >= len {
                    return Some(cur);
                }
                cur = node.next;
                if wrapped && cur == start {
                    return None;
                }
            }
        }
        FitAlgorithm::BestFit => {
            let mut best: Option<(usize, usize)> = None;
            for (slot, span) in slab.iter() {
                *steps += 1;
                if span.len >= len && best.is_none_or(|(_, bl)| span.len < bl) {
                    best = Some((slot, span.len));
                    if span.len == len {
                        break; // cannot do better than exact
                    }
                }
            }
            best.map(|(s, _)| s)
        }
        FitAlgorithm::WorstFit => {
            let mut worst: Option<(usize, usize)> = None;
            for (slot, span) in slab.iter() {
                *steps += 1;
                if span.len >= len && worst.is_none_or(|(_, wl)| span.len > wl) {
                    worst = Some((slot, span.len));
                }
            }
            worst.map(|(s, _)| s)
        }
        FitAlgorithm::ExactFit => {
            for (slot, span) in slab.iter() {
                *steps += 1;
                if span.len == len {
                    return Some(slot);
                }
            }
            None
        }
    }
}

/// A LIFO singly linked free list.
#[derive(Debug, Clone, Default)]
pub struct SllIndex {
    slab: LinkedSlab,
}

impl SllIndex {
    /// An empty singly linked index.
    pub fn new() -> Self {
        SllIndex {
            slab: LinkedSlab::new(),
        }
    }
}

impl FreeIndex for SllIndex {
    fn insert(&mut self, span: Span, steps: &mut u64) {
        *steps += 1; // head insert
        self.slab.push_front(span);
    }

    fn remove(&mut self, offset: usize, steps: &mut u64) -> Option<Span> {
        let slot = *self.slab.by_offset.get(&offset)?;
        // A singly linked list must walk to the predecessor to unlink.
        *steps += self.slab.walk_distance(slot);
        Some(self.slab.unlink(slot))
    }

    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Span> {
        let slot = search(&self.slab, fit, len, self.slab.cursor, steps)?;
        if fit == FitAlgorithm::NextFit {
            self.slab.cursor = self.slab.nodes[slot].next;
        }
        Some(self.slab.nodes[slot].span)
    }

    fn len(&self) -> usize {
        self.slab.len
    }

    fn spans(&self) -> Vec<Span> {
        self.slab.iter().map(|(_, s)| s).collect()
    }

    fn clear(&mut self) {
        self.slab.clear();
    }

    fn control_overhead_bytes(&self) -> usize {
        POINTER_BYTES // the head pointer
    }
}

/// A doubly linked free list with O(1) unlink.
#[derive(Debug, Clone, Default)]
pub struct DllIndex {
    slab: LinkedSlab,
}

impl DllIndex {
    /// An empty doubly linked index.
    pub fn new() -> Self {
        DllIndex {
            slab: LinkedSlab::new(),
        }
    }
}

impl FreeIndex for DllIndex {
    fn insert(&mut self, span: Span, steps: &mut u64) {
        *steps += 1;
        self.slab.push_front(span);
    }

    fn remove(&mut self, offset: usize, steps: &mut u64) -> Option<Span> {
        let slot = *self.slab.by_offset.get(&offset)?;
        *steps += 1; // O(1) unlink thanks to the back pointer
        Some(self.slab.unlink(slot))
    }

    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Span> {
        let slot = search(&self.slab, fit, len, self.slab.cursor, steps)?;
        if fit == FitAlgorithm::NextFit {
            self.slab.cursor = self.slab.nodes[slot].next;
        }
        Some(self.slab.nodes[slot].span)
    }

    fn len(&self) -> usize {
        self.slab.len
    }

    fn spans(&self) -> Vec<Span> {
        self.slab.iter().map(|(_, s)| s).collect()
    }

    fn clear(&mut self) {
        self.slab.clear();
    }

    fn control_overhead_bytes(&self) -> usize {
        2 * POINTER_BYTES // head + tail pointers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sll_remove_charges_walk_dll_does_not() {
        let mut sll = SllIndex::new();
        let mut dll = DllIndex::new();
        let mut s = 0u64;
        for i in 0..10 {
            sll.insert(Span::new(i * 32, 32), &mut s);
            dll.insert(Span::new(i * 32, 32), &mut s);
        }
        // Offset 0 was inserted first => it is at the tail (distance 10).
        let mut sll_steps = 0u64;
        sll.remove(0, &mut sll_steps).unwrap();
        let mut dll_steps = 0u64;
        dll.remove(0, &mut dll_steps).unwrap();
        assert!(sll_steps >= 10, "SLL unlink must walk: {sll_steps}");
        assert_eq!(dll_steps, 1, "DLL unlink is O(1)");
    }

    #[test]
    fn lifo_order_drives_first_fit() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 64), &mut s);
        idx.insert(Span::new(64, 128), &mut s); // most recent => head
        let found = idx.find(FitAlgorithm::FirstFit, 32, &mut s).unwrap();
        assert_eq!(found.offset, 64, "first fit sees the most recent insert");
    }

    #[test]
    fn next_fit_roves() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..4 {
            idx.insert(Span::new(i * 64, 64), &mut s);
        }
        // Head order is offsets 192,128,64,0.
        let a = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        let b = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        assert_ne!(a.offset, b.offset, "next fit advances past its last hit");
    }

    #[test]
    fn next_fit_wraps_around() {
        let mut idx = SllIndex::new();
        let mut s = 0u64;
        idx.insert(Span::new(0, 32), &mut s);
        idx.insert(Span::new(32, 256), &mut s);
        // First call lands on the 256 block (head), cursor moves past it.
        assert_eq!(idx.find(FitAlgorithm::NextFit, 100, &mut s).unwrap().offset, 32);
        // Only the 256 block fits 100; next fit must wrap to find it again.
        assert_eq!(idx.find(FitAlgorithm::NextFit, 100, &mut s).unwrap().offset, 32);
    }

    #[test]
    fn next_fit_cursor_survives_remove_then_reinsert() {
        // Remove a node (freeing its slot), then reinsert a different span
        // so push_front reuses that slot. The roving cursor must keep
        // pointing at live nodes: every subsequent NextFit hit is a
        // currently indexed span, and repeated searches cycle over all of
        // them rather than chasing the recycled slot.
        for mk in [
            || Box::new(SllIndex::new()) as Box<dyn FreeIndex>,
            || Box::new(DllIndex::new()) as Box<dyn FreeIndex>,
        ] {
            let mut idx = mk();
            let mut s = 0u64;
            for i in 0..4 {
                idx.insert(Span::new(i * 64, 64), &mut s);
            }
            // Park the cursor mid-list.
            let hit = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
            // Unlink a *different* node than the cursor's, then reuse its
            // slot for a fresh span.
            let victim = (hit.offset + 128) % 256;
            idx.remove(victim, &mut s).unwrap();
            idx.insert(Span::new(1024, 64), &mut s);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..16 {
                let f = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
                assert!(
                    idx.spans().contains(&f),
                    "cursor produced a phantom span {f:?}"
                );
                seen.insert(f.offset);
            }
            assert_eq!(
                seen.len(),
                idx.len(),
                "roving search must still visit every live span"
            );
        }
    }

    #[test]
    fn cursor_survives_removal_of_cursor_block() {
        let mut idx = DllIndex::new();
        let mut s = 0u64;
        for i in 0..3 {
            idx.insert(Span::new(i * 64, 64), &mut s);
        }
        let hit = idx.find(FitAlgorithm::NextFit, 64, &mut s).unwrap();
        idx.remove(hit.offset, &mut s).unwrap();
        // Cursor pointed into the removed node's neighbourhood; the next
        // search must still terminate and find something.
        assert!(idx.find(FitAlgorithm::NextFit, 64, &mut s).is_some());
    }
}
