//! Free-block index structures — the implementations of the A1
//! (*Block structure*) decision tree.
//!
//! Each index organises the free blocks of one pool and charges
//! [`search steps`](crate::metrics::AllocStats::search_steps) that reflect
//! its real algorithmic cost on the modelled target, so the performance
//! consequences of the A1 decision are measurable as well as the footprint
//! ones.
//!
//! # Handles, tokens and rank-computed walks
//!
//! Since the boundary-tag refactor the indexes speak the handle language
//! of the [`Tiling`](crate::heap::tiling::Tiling): every entry records the
//! [`BlockRef`] of the block it indexes, [`FreeIndex::insert`] returns an
//! opaque *token* the caller stores in that block, and
//! [`FreeIndex::remove`] takes the token (plus the span, which the caller
//! always has in hand) — there are **no** offset→node side lookups left in
//! any index.
//!
//! The simulated cost model is unchanged and bit-identical to the faithful
//! node-by-node walks, but since the order-statistic layer ([`rank`]) *no
//! charge is walked at all*: each index mirrors its walk order into a
//! rank/select tree, so hit distances, early-stop miss charges, and
//! singly-linked unlink positions are each one O(log) rank query. The
//! faithful walks stay compiled in as debug shadow oracles — every find
//! asserts the computed answer and charge against them in debug builds,
//! and [`FreeIndex::check_oracle`] revalidates the replicas structurally
//! per replay event.

mod linked;
mod ordered;
pub mod rank;

pub use linked::{DllIndex, SllIndex};
pub use ordered::{AddrIndex, SizeTreeIndex};

use crate::heap::block::Span;
use crate::heap::tiling::BlockRef;
use crate::space::trees::{BlockStructure, FitAlgorithm};

/// A located free block: where it is, which tiling block backs it, and the
/// index-internal token that unlinks it without any lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Found {
    /// The span of the located block.
    pub span: Span,
    /// The tiling block the entry indexes.
    pub block: BlockRef,
    /// Token to pass to [`FreeIndex::remove`].
    pub token: usize,
}

/// Common interface of all free-block indexes.
///
/// Implementations must tolerate any interleaving of operations; `steps`
/// accumulates the abstract unit-cost of each operation.
pub trait FreeIndex: std::fmt::Debug {
    /// Add a free span backed by tiling block `block`. Returns the token
    /// that removes this entry in O(1); the caller stores it in the block.
    fn insert(&mut self, span: Span, block: BlockRef, steps: &mut u64) -> usize;

    /// Remove the entry `token`/`span` name; returns the backing block if
    /// the entry was present. A stale token (entry already removed, or
    /// token recycled for a different span) returns `None`.
    fn remove(&mut self, token: usize, span: Span, steps: &mut u64) -> Option<BlockRef>;

    /// Locate (without removing) a span satisfying `fit` for `len` bytes.
    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Found>;

    /// Number of indexed spans.
    fn len(&self) -> usize;

    /// Whether the index holds no spans.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all indexed spans (order unspecified).
    fn spans(&self) -> Vec<Span>;

    /// Drop all spans.
    fn clear(&mut self);

    /// Static control-structure bytes this index costs on the target.
    fn control_overhead_bytes(&self) -> usize;

    /// Validate any rank/select replica against the walked structure it
    /// mirrors (debug replays call this per event). Indexes whose charges
    /// are computed directly from their primary structure have nothing to
    /// cross-check and keep the default.
    fn check_oracle(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Instantiate the index matching an A1 leaf.
pub fn new_index(structure: BlockStructure) -> Box<dyn FreeIndex + Send> {
    match structure {
        BlockStructure::SinglyLinkedList => Box::new(SllIndex::new()),
        BlockStructure::DoublyLinkedList => Box::new(DllIndex::new()),
        BlockStructure::AddressOrderedList => Box::new(AddrIndex::new()),
        BlockStructure::SizeOrderedTree => Box::new(SizeTreeIndex::new()),
    }
}

/// A pool's free index with the A1 leaf resolved by enum, not vtable.
///
/// The pool set holds these instead of `Box<dyn FreeIndex>`: a replay
/// drives a handful of index calls per event through the pool layer, and a
/// predictable four-way match the optimiser can inline through is
/// measurably cheaper than virtual dispatch on that path. The trait object
/// form ([`new_index`]) remains for callers that want open-ended
/// composition.
#[derive(Debug)]
pub enum PoolIndex {
    /// A1: singly linked list.
    Sll(SllIndex),
    /// A1: doubly linked list.
    Dll(DllIndex),
    /// A1: address-ordered list.
    Addr(AddrIndex),
    /// A1: size-ordered tree.
    SizeTree(SizeTreeIndex),
}

impl PoolIndex {
    /// Instantiate the variant matching an A1 leaf.
    pub fn new(structure: BlockStructure) -> Self {
        match structure {
            BlockStructure::SinglyLinkedList => PoolIndex::Sll(SllIndex::new()),
            BlockStructure::DoublyLinkedList => PoolIndex::Dll(DllIndex::new()),
            BlockStructure::AddressOrderedList => PoolIndex::Addr(AddrIndex::new()),
            BlockStructure::SizeOrderedTree => PoolIndex::SizeTree(SizeTreeIndex::new()),
        }
    }
}

/// Forward every [`FreeIndex`] method through one four-way match.
macro_rules! pool_index_dispatch {
    ($self:expr, $idx:ident => $body:expr) => {
        match $self {
            PoolIndex::Sll($idx) => $body,
            PoolIndex::Dll($idx) => $body,
            PoolIndex::Addr($idx) => $body,
            PoolIndex::SizeTree($idx) => $body,
        }
    };
}

impl FreeIndex for PoolIndex {
    #[inline]
    fn insert(&mut self, span: Span, block: BlockRef, steps: &mut u64) -> usize {
        pool_index_dispatch!(self, idx => idx.insert(span, block, steps))
    }

    #[inline]
    fn remove(&mut self, token: usize, span: Span, steps: &mut u64) -> Option<BlockRef> {
        pool_index_dispatch!(self, idx => idx.remove(token, span, steps))
    }

    #[inline]
    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Found> {
        pool_index_dispatch!(self, idx => idx.find(fit, len, steps))
    }

    #[inline]
    fn len(&self) -> usize {
        pool_index_dispatch!(self, idx => idx.len())
    }

    fn spans(&self) -> Vec<Span> {
        pool_index_dispatch!(self, idx => idx.spans())
    }

    fn clear(&mut self) {
        pool_index_dispatch!(self, idx => idx.clear())
    }

    fn control_overhead_bytes(&self) -> usize {
        pool_index_dispatch!(self, idx => idx.control_overhead_bytes())
    }

    fn check_oracle(&self) -> Result<(), String> {
        pool_index_dispatch!(self, idx => idx.check_oracle())
    }
}

#[cfg(test)]
mod contract_tests {
    //! Behavioural contract every index implementation must satisfy.

    use super::*;
    use std::collections::HashMap;

    fn all_indexes() -> Vec<(BlockStructure, Box<dyn FreeIndex + Send>)> {
        BlockStructure::ALL
            .iter()
            .map(|&s| (s, new_index(s)))
            .collect()
    }

    /// Test stand-in for tiling refs: offset / 8 (distinct per span).
    fn bref(offset: usize) -> BlockRef {
        BlockRef::from_index((offset / 8) as u32)
    }

    #[test]
    fn insert_find_remove_round_trip() {
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            idx.insert(Span::new(0, 64), bref(0), &mut steps);
            let t64 = idx.insert(Span::new(64, 128), bref(64), &mut steps);
            idx.insert(Span::new(192, 32), bref(192), &mut steps);
            assert_eq!(idx.len(), 3, "{kind:?}");

            for fit in FitAlgorithm::ALL {
                let found = idx.find(fit, 32, &mut steps);
                let f = found.unwrap_or_else(|| panic!("{kind:?}/{fit:?} found nothing"));
                assert!(f.span.len >= 32, "{kind:?}/{fit:?} returned too-small span");
            }

            assert_eq!(
                idx.remove(t64, Span::new(64, 128), &mut steps),
                Some(bref(64)),
                "{kind:?}"
            );
            assert_eq!(
                idx.remove(t64, Span::new(64, 128), &mut steps),
                None,
                "{kind:?} double remove"
            );
            assert_eq!(idx.len(), 2);
            idx.clear();
            assert!(idx.is_empty());
            assert!(idx.find(FitAlgorithm::FirstFit, 1, &mut steps).is_none());
        }
    }

    #[test]
    fn find_reports_the_backing_block_and_a_removing_token() {
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            idx.insert(Span::new(0, 64), bref(0), &mut steps);
            idx.insert(Span::new(64, 96), bref(64), &mut steps);
            let f = idx.find(FitAlgorithm::BestFit, 80, &mut steps).unwrap();
            assert_eq!(f.span, Span::new(64, 96), "{kind:?}");
            assert_eq!(f.block, bref(64), "{kind:?}");
            // The reported token removes exactly that entry.
            assert_eq!(idx.remove(f.token, f.span, &mut steps), Some(bref(64)));
            assert_eq!(idx.len(), 1, "{kind:?}");
            assert!(idx.find(FitAlgorithm::BestFit, 80, &mut steps).is_none());
        }
    }

    #[test]
    fn fit_postconditions() {
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            let sizes = [48usize, 256, 96, 64, 512, 64];
            for (i, &len) in sizes.iter().enumerate() {
                idx.insert(Span::new(i * 1024, len), bref(i * 1024), &mut steps);
            }
            let need = 64;

            let best = idx.find(FitAlgorithm::BestFit, need, &mut steps).unwrap();
            assert_eq!(best.span.len, 64, "{kind:?} best fit must be tightest");

            let worst = idx.find(FitAlgorithm::WorstFit, need, &mut steps).unwrap();
            assert_eq!(worst.span.len, 512, "{kind:?} worst fit must be largest");

            let exact = idx.find(FitAlgorithm::ExactFit, need, &mut steps).unwrap();
            assert_eq!(exact.span.len, 64, "{kind:?} exact fit must match exactly");
            assert!(
                idx.find(FitAlgorithm::ExactFit, 100, &mut steps).is_none(),
                "{kind:?} exact fit must miss absent sizes"
            );

            let first = idx.find(FitAlgorithm::FirstFit, need, &mut steps).unwrap();
            assert!(first.span.len >= need);

            // Requests larger than everything must miss for every fit.
            for fit in FitAlgorithm::ALL {
                assert!(
                    idx.find(fit, 4096, &mut steps).is_none(),
                    "{kind:?}/{fit:?} fabricated a span"
                );
            }
        }
    }

    #[test]
    fn spans_snapshot_is_complete() {
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            let mut expect = Vec::new();
            for i in 0..16 {
                let span = Span::new(i * 100, 16 + i);
                idx.insert(span, bref(i * 104), &mut steps);
                expect.push(span);
            }
            let mut got = idx.spans();
            got.sort();
            expect.sort();
            assert_eq!(got, expect, "{kind:?}");
        }
    }

    #[test]
    fn steps_always_advance() {
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            let token = idx.insert(Span::new(0, 64), bref(0), &mut steps);
            assert!(steps > 0, "{kind:?} insert charged nothing");
            let before = steps;
            idx.find(FitAlgorithm::FirstFit, 16, &mut steps);
            assert!(steps > before, "{kind:?} find charged nothing");
            let before = steps;
            idx.remove(token, Span::new(0, 64), &mut steps);
            assert!(steps > before, "{kind:?} remove charged nothing");
        }
    }

    #[test]
    fn next_fit_eventually_visits_everything() {
        // With equal-size blocks, repeated next-fit hits must cycle through
        // distinct offsets rather than hammering one block.
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            for i in 0..8 {
                idx.insert(Span::new(i * 64, 64), bref(i * 64), &mut steps);
            }
            let mut seen = std::collections::HashSet::new();
            for _ in 0..32 {
                let f = idx.find(FitAlgorithm::NextFit, 64, &mut steps).unwrap();
                seen.insert(f.span.offset);
            }
            assert!(seen.len() >= 2, "{kind:?} next fit never roved: {seen:?}");
        }
    }

    #[test]
    fn misses_charge_exactly_one_full_walk() {
        // The memoised fast paths must charge what the faithful walk
        // charged: a fit that cannot be satisfied visits every node once.
        for (kind, mut idx) in all_indexes() {
            if matches!(kind, BlockStructure::SizeOrderedTree) {
                continue; // logarithmic by design, not walk-charged
            }
            let mut steps = 0u64;
            for i in 0..10 {
                idx.insert(Span::new(i * 64, 32 + (i % 3) * 16), bref(i * 64), &mut steps);
            }
            for fit in [
                FitAlgorithm::FirstFit,
                FitAlgorithm::NextFit,
                FitAlgorithm::BestFit,
                FitAlgorithm::WorstFit,
                FitAlgorithm::ExactFit,
            ] {
                let mut walk = 0u64;
                assert!(idx.find(fit, 4096, &mut walk).is_none(), "{kind:?}/{fit:?}");
                assert_eq!(walk, 10, "{kind:?}/{fit:?} miss must charge the full walk");
            }
        }
    }

    #[test]
    fn tokens_stay_valid_under_churn() {
        // Tokens returned by insert keep removing the right entry across
        // arbitrary interleavings (slot recycling included).
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            let mut live: HashMap<usize, (usize, Span)> = HashMap::new();
            let mut x: u64 = 0xDEADBEEFCAFEF00D;
            let mut next_off = 0usize;
            for _ in 0..400 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if live.len() < 4 || !x.is_multiple_of(3) {
                    let span = Span::new(next_off, 16 + (x % 7) as usize * 16);
                    let token = idx.insert(span, bref(next_off), &mut steps);
                    live.insert(next_off, (token, span));
                    next_off += 1024;
                } else {
                    let &k = live.keys().nth(x as usize % live.len()).unwrap();
                    let (token, span) = live.remove(&k).unwrap();
                    assert_eq!(
                        idx.remove(token, span, &mut steps),
                        Some(bref(span.offset)),
                        "{kind:?}: token failed to remove its span"
                    );
                }
            }
            assert_eq!(idx.len(), live.len(), "{kind:?}");
            let mut got = idx.spans();
            got.sort();
            let mut expect: Vec<Span> = live.values().map(|(_, s)| *s).collect();
            expect.sort();
            assert_eq!(got, expect, "{kind:?}");
        }
    }
}
