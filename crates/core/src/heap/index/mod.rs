//! Free-block index structures — the implementations of the A1
//! (*Block structure*) decision tree.
//!
//! Each index organises the free blocks of one pool and charges
//! [`search steps`](crate::metrics::AllocStats::search_steps) that reflect
//! its real algorithmic cost on the modelled target, so the performance
//! consequences of the A1 decision are measurable as well as the footprint
//! ones.

mod linked;
mod ordered;

pub use linked::{DllIndex, SllIndex};
pub use ordered::{AddrIndex, SizeTreeIndex};

use crate::heap::block::Span;
use crate::space::trees::{BlockStructure, FitAlgorithm};

/// Common interface of all free-block indexes.
///
/// Implementations must tolerate any interleaving of operations; `steps`
/// accumulates the abstract unit-cost of each operation.
pub trait FreeIndex: std::fmt::Debug {
    /// Add a free span.
    fn insert(&mut self, span: Span, steps: &mut u64);

    /// Remove the span starting at `offset`; returns it if present.
    fn remove(&mut self, offset: usize, steps: &mut u64) -> Option<Span>;

    /// Locate (without removing) a span satisfying `fit` for `len` bytes.
    fn find(&mut self, fit: FitAlgorithm, len: usize, steps: &mut u64) -> Option<Span>;

    /// Number of indexed spans.
    fn len(&self) -> usize;

    /// Whether the index holds no spans.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all indexed spans (order unspecified).
    fn spans(&self) -> Vec<Span>;

    /// Drop all spans.
    fn clear(&mut self);

    /// Static control-structure bytes this index costs on the target.
    fn control_overhead_bytes(&self) -> usize;
}

/// Instantiate the index matching an A1 leaf.
pub fn new_index(structure: BlockStructure) -> Box<dyn FreeIndex + Send> {
    match structure {
        BlockStructure::SinglyLinkedList => Box::new(SllIndex::new()),
        BlockStructure::DoublyLinkedList => Box::new(DllIndex::new()),
        BlockStructure::AddressOrderedList => Box::new(AddrIndex::new()),
        BlockStructure::SizeOrderedTree => Box::new(SizeTreeIndex::new()),
    }
}

#[cfg(test)]
mod contract_tests {
    //! Behavioural contract every index implementation must satisfy.

    use super::*;

    fn all_indexes() -> Vec<(BlockStructure, Box<dyn FreeIndex + Send>)> {
        BlockStructure::ALL
            .iter()
            .map(|&s| (s, new_index(s)))
            .collect()
    }

    #[test]
    fn insert_find_remove_round_trip() {
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            idx.insert(Span::new(0, 64), &mut steps);
            idx.insert(Span::new(64, 128), &mut steps);
            idx.insert(Span::new(192, 32), &mut steps);
            assert_eq!(idx.len(), 3, "{kind:?}");

            for fit in FitAlgorithm::ALL {
                let found = idx.find(fit, 32, &mut steps);
                let span = found.unwrap_or_else(|| panic!("{kind:?}/{fit:?} found nothing"));
                assert!(span.len >= 32, "{kind:?}/{fit:?} returned too-small span");
            }

            assert_eq!(idx.remove(64, &mut steps), Some(Span::new(64, 128)));
            assert_eq!(idx.remove(64, &mut steps), None, "{kind:?} double remove");
            assert_eq!(idx.len(), 2);
            idx.clear();
            assert!(idx.is_empty());
            assert!(idx.find(FitAlgorithm::FirstFit, 1, &mut steps).is_none());
        }
    }

    #[test]
    fn fit_postconditions() {
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            let sizes = [48usize, 256, 96, 64, 512, 64];
            for (i, &len) in sizes.iter().enumerate() {
                idx.insert(Span::new(i * 1024, len), &mut steps);
            }
            let need = 64;

            let best = idx.find(FitAlgorithm::BestFit, need, &mut steps).unwrap();
            assert_eq!(best.len, 64, "{kind:?} best fit must be tightest");

            let worst = idx.find(FitAlgorithm::WorstFit, need, &mut steps).unwrap();
            assert_eq!(worst.len, 512, "{kind:?} worst fit must be largest");

            let exact = idx.find(FitAlgorithm::ExactFit, need, &mut steps).unwrap();
            assert_eq!(exact.len, 64, "{kind:?} exact fit must match exactly");
            assert!(
                idx.find(FitAlgorithm::ExactFit, 100, &mut steps).is_none(),
                "{kind:?} exact fit must miss absent sizes"
            );

            let first = idx.find(FitAlgorithm::FirstFit, need, &mut steps).unwrap();
            assert!(first.len >= need);

            // Requests larger than everything must miss for every fit.
            for fit in FitAlgorithm::ALL {
                assert!(
                    idx.find(fit, 4096, &mut steps).is_none(),
                    "{kind:?}/{fit:?} fabricated a span"
                );
            }
        }
    }

    #[test]
    fn spans_snapshot_is_complete() {
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            let mut expect = Vec::new();
            for i in 0..16 {
                let span = Span::new(i * 100, 16 + i);
                idx.insert(span, &mut steps);
                expect.push(span);
            }
            let mut got = idx.spans();
            got.sort();
            expect.sort();
            assert_eq!(got, expect, "{kind:?}");
        }
    }

    #[test]
    fn steps_always_advance() {
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            idx.insert(Span::new(0, 64), &mut steps);
            assert!(steps > 0, "{kind:?} insert charged nothing");
            let before = steps;
            idx.find(FitAlgorithm::FirstFit, 16, &mut steps);
            assert!(steps > before, "{kind:?} find charged nothing");
            let before = steps;
            idx.remove(0, &mut steps);
            assert!(steps > before, "{kind:?} remove charged nothing");
        }
    }

    #[test]
    fn next_fit_eventually_visits_everything() {
        // With equal-size blocks, repeated next-fit hits must cycle through
        // distinct offsets rather than hammering one block.
        for (kind, mut idx) in all_indexes() {
            let mut steps = 0u64;
            for i in 0..8 {
                idx.insert(Span::new(i * 64, 64), &mut steps);
            }
            let mut seen = std::collections::HashSet::new();
            for _ in 0..32 {
                let s = idx.find(FitAlgorithm::NextFit, 64, &mut steps).unwrap();
                seen.insert(s.offset);
            }
            assert!(
                seen.len() >= 2,
                "{kind:?} next fit never roved: {seen:?}"
            );
        }
    }
}
