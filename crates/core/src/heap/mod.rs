//! The simulated heap substrate.
//!
//! Managers in this workspace do not run on the host allocator — they run on
//! a byte-exact simulation of an embedded memory system, so that footprint
//! numbers are deterministic and reproducible:
//!
//! - [`Arena`] — the `sbrk`-style system memory;
//! - [`block`] — block spans and the tiling-invariant [`block::BlockMap`];
//! - [`index`] — the free-block index structures of decision tree A1.

pub mod arena;
pub mod block;
pub mod index;

pub use arena::Arena;
pub use block::{Block, BlockMap, BlockState, Span};
pub use index::{new_index, FreeIndex};
