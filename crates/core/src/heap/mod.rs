//! The simulated heap substrate.
//!
//! Managers in this workspace do not run on the host allocator — they run on
//! a byte-exact simulation of an embedded memory system, so that footprint
//! numbers are deterministic and reproducible:
//!
//! - [`Arena`] — the `sbrk`-style system memory;
//! - [`block`] — block spans and the classic offset-keyed
//!   [`block::BlockMap`] (today the debug-only shadow oracle of the
//!   tiling, and the block table of the hand-rolled Lea baseline);
//! - [`tiling`] — the boundary-tag [`tiling::Tiling`] block store: the
//!   authoritative, handle-addressed intrusive neighbour list every
//!   policy manager runs on;
//! - [`index`] — the free-block index structures of decision tree A1.

pub mod arena;
pub mod block;
pub mod index;
pub mod tiling;

pub use arena::Arena;
pub use block::{Block, BlockMap, BlockState, Span};
pub use index::{new_index, FreeIndex};
pub use tiling::{BlockRef, TiledBlock, Tiling};
