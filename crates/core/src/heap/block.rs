//! Block spans and the classic offset-keyed block map.
//!
//! Every byte the arena has handed out belongs to exactly one [`Block`],
//! free or used — the *tiling invariant*. [`BlockMap`] was the
//! simulation's ground truth through PR 4; the policy layer now runs on
//! the O(1) boundary-tag [`Tiling`](crate::heap::tiling::Tiling) instead,
//! and this `BTreeMap`-backed map remains as (a) the **debug-only shadow
//! oracle** the tiling cross-checks every block sequence against and
//! (b) the block table of the independently hand-rolled Lea baseline.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A contiguous byte span inside the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Offset of the first byte.
    pub offset: usize,
    /// Length in bytes (never zero).
    pub len: usize,
}

impl Span {
    /// Create a span; `len` must be non-zero.
    pub fn new(offset: usize, len: usize) -> Self {
        debug_assert!(len > 0, "zero-length span");
        Span { offset, len }
    }

    /// One past the last byte.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// Whether `self` immediately precedes `other`.
    pub fn precedes(&self, other: &Span) -> bool {
        self.end() == other.offset
    }

    /// Whether the two spans overlap.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }
}

/// Whether a block is free or holds an application object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockState {
    /// Available for allocation.
    Free,
    /// Currently allocated to the application.
    Used,
}

/// One block of the tiled arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The bytes this block covers.
    pub span: Span,
    /// Free or used.
    pub state: BlockState,
    /// Bytes the application requested (payload), meaningful when used.
    pub requested: usize,
    /// Pool the block currently belongs to.
    pub pool: usize,
}

impl Block {
    /// A new free block in `pool`.
    pub fn free(span: Span, pool: usize) -> Self {
        Block {
            span,
            state: BlockState::Free,
            requested: 0,
            pool,
        }
    }

    /// Whether the block is free.
    pub fn is_free(&self) -> bool {
        self.state == BlockState::Free
    }
}

/// Authoritative offset-ordered table of every block.
#[derive(Debug, Clone, Default)]
pub struct BlockMap {
    map: BTreeMap<usize, Block>,
}

impl BlockMap {
    /// An empty map.
    pub fn new() -> Self {
        BlockMap::default()
    }

    /// Number of blocks (free + used).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no blocks at all.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Insert a block.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a block already starts at the same offset.
    pub fn insert(&mut self, block: Block) {
        let prev = self.map.insert(block.span.offset, block);
        debug_assert!(prev.is_none(), "duplicate block at {}", block.span.offset);
    }

    /// Remove the block starting at `offset`.
    pub fn remove(&mut self, offset: usize) -> Option<Block> {
        self.map.remove(&offset)
    }

    /// The block starting exactly at `offset`.
    pub fn get(&self, offset: usize) -> Option<&Block> {
        self.map.get(&offset)
    }

    /// Mutable access to the block starting at `offset`.
    pub fn get_mut(&mut self, offset: usize) -> Option<&mut Block> {
        self.map.get_mut(&offset)
    }

    /// The block physically after the one starting at `offset`.
    pub fn next_of(&self, offset: usize) -> Option<&Block> {
        let block = self.map.get(&offset)?;
        self.map.get(&block.span.end())
    }

    /// The block physically before the one starting at `offset`.
    pub fn prev_of(&self, offset: usize) -> Option<&Block> {
        self.map.range(..offset).next_back().map(|(_, b)| b)
    }

    /// The top-most block (highest offset), if any.
    pub fn top(&self) -> Option<&Block> {
        self.map.values().next_back()
    }

    /// Iterate blocks in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.map.values()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Verify the tiling invariant against an arena of size `brk`:
    /// blocks start at 0, are contiguous, non-overlapping, and end at `brk`.
    ///
    /// Returns a description of the first violation, if any.
    pub fn check_tiling(&self, brk: usize) -> Option<String> {
        let mut cursor = 0usize;
        for block in self.map.values() {
            if block.span.offset != cursor {
                return Some(format!(
                    "gap or overlap: expected block at {cursor}, found {}",
                    block.span.offset
                ));
            }
            if block.span.len == 0 {
                return Some(format!("zero-length block at {}", block.span.offset));
            }
            cursor = block.span.end();
        }
        if cursor != brk {
            return Some(format!("tiling ends at {cursor}, arena brk is {brk}"));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(offset: usize, len: usize, state: BlockState) -> Block {
        Block {
            span: Span::new(offset, len),
            state,
            requested: 0,
            pool: 0,
        }
    }

    #[test]
    fn span_geometry() {
        let a = Span::new(0, 16);
        let c = Span::new(16, 8);
        assert_eq!(a.end(), 16);
        assert!(a.precedes(&c));
        assert!(!c.precedes(&a));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&Span::new(8, 16)));
        assert!(Span::new(8, 16).overlaps(&a));
    }

    #[test]
    fn neighbours() {
        let mut m = BlockMap::new();
        m.insert(b(0, 16, BlockState::Free));
        m.insert(b(16, 32, BlockState::Used));
        m.insert(b(48, 16, BlockState::Free));
        assert_eq!(m.next_of(0).unwrap().span.offset, 16);
        assert_eq!(m.next_of(16).unwrap().span.offset, 48);
        assert!(m.next_of(48).is_none());
        assert_eq!(m.prev_of(16).unwrap().span.offset, 0);
        assert!(m.prev_of(0).is_none());
        assert_eq!(m.top().unwrap().span.offset, 48);
    }

    #[test]
    fn tiling_detects_gap_and_short_end() {
        let mut m = BlockMap::new();
        m.insert(b(0, 16, BlockState::Free));
        m.insert(b(32, 16, BlockState::Free)); // gap at 16..32
        assert!(m.check_tiling(48).unwrap().contains("gap"));

        let mut m = BlockMap::new();
        m.insert(b(0, 16, BlockState::Free));
        assert!(m.check_tiling(32).unwrap().contains("ends at 16"));
        assert!(m.check_tiling(16).is_none());
    }

    #[test]
    fn empty_map_tiles_empty_arena() {
        let m = BlockMap::new();
        assert!(m.check_tiling(0).is_none());
        assert!(m.check_tiling(1).is_some());
    }
}
