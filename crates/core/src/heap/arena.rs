//! The simulated system memory the managers draw from.
//!
//! An [`Arena`] models a classic `sbrk`-style contiguous address space:
//! managers extend it at the top to get fresh memory and may shrink it at
//! the top to give memory back (the paper's custom managers "return large
//! coalesced chunks back to the system"). The arena never hands out
//! overlapping regions; its break-point high-water mark is the manager's
//! maximum memory footprint.

use crate::error::{Error, Result};

/// A simulated contiguous address space with `sbrk`/`trim` semantics.
///
/// # Examples
///
/// ```
/// use dmm_core::heap::Arena;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Arena::unbounded();
/// let base = a.sbrk(4096)?;
/// assert_eq!(base, 0);
/// assert_eq!(a.brk(), 4096);
/// a.trim(1024); // release the top 3 KiB
/// assert_eq!(a.brk(), 1024);
/// assert_eq!(a.peak_brk(), 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Arena {
    brk: usize,
    peak_brk: usize,
    limit: Option<usize>,
    sbrk_calls: u64,
    trim_calls: u64,
}

impl Arena {
    /// An arena with no capacity limit.
    pub fn unbounded() -> Self {
        Arena::default()
    }

    /// An arena that refuses to grow beyond `limit` bytes.
    pub fn with_limit(limit: usize) -> Self {
        Arena {
            limit: Some(limit),
            ..Arena::default()
        }
    }

    /// Extend the arena by `bytes` and return the offset of the new region.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] if a limit is configured and would be
    /// exceeded.
    pub fn sbrk(&mut self, bytes: usize) -> Result<usize> {
        if let Some(limit) = self.limit {
            if self.brk + bytes > limit {
                return Err(Error::OutOfMemory {
                    requested: bytes,
                    limit,
                });
            }
        }
        let base = self.brk;
        self.brk += bytes;
        self.peak_brk = self.peak_brk.max(self.brk);
        self.sbrk_calls += 1;
        Ok(base)
    }

    /// Shrink the arena down to `new_brk`, returning the released bytes to
    /// the system.
    ///
    /// # Panics
    ///
    /// Panics if `new_brk` exceeds the current break (that would *grow* the
    /// arena; use [`Arena::sbrk`]).
    pub fn trim(&mut self, new_brk: usize) {
        assert!(
            new_brk <= self.brk,
            "trim to {new_brk} beyond current brk {}",
            self.brk
        );
        if new_brk < self.brk {
            self.brk = new_brk;
            self.trim_calls += 1;
        }
    }

    /// Current break — bytes presently reserved from the system.
    pub fn brk(&self) -> usize {
        self.brk
    }

    /// High-water mark of the break: the *maximum memory footprint*.
    pub fn peak_brk(&self) -> usize {
        self.peak_brk
    }

    /// Configured capacity limit, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Number of `sbrk` extensions performed.
    pub fn sbrk_calls(&self) -> u64 {
        self.sbrk_calls
    }

    /// Number of trims performed.
    pub fn trim_calls(&self) -> u64 {
        self.trim_calls
    }

    /// Forget all state, returning the arena to zero size.
    pub fn reset(&mut self) {
        let limit = self.limit;
        *self = Arena::default();
        self.limit = limit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbrk_is_contiguous() {
        let mut a = Arena::unbounded();
        assert_eq!(a.sbrk(100).unwrap(), 0);
        assert_eq!(a.sbrk(50).unwrap(), 100);
        assert_eq!(a.brk(), 150);
        assert_eq!(a.sbrk_calls(), 2);
    }

    #[test]
    fn limit_is_enforced() {
        let mut a = Arena::with_limit(128);
        a.sbrk(100).unwrap();
        let err = a.sbrk(29).unwrap_err();
        assert!(matches!(err, Error::OutOfMemory { requested: 29, limit: 128 }));
        // A fitting request still succeeds.
        a.sbrk(28).unwrap();
        assert_eq!(a.brk(), 128);
    }

    #[test]
    fn peak_survives_trim() {
        let mut a = Arena::unbounded();
        a.sbrk(4096).unwrap();
        a.trim(0);
        assert_eq!(a.brk(), 0);
        assert_eq!(a.peak_brk(), 4096);
        // Growing again reuses the released range.
        assert_eq!(a.sbrk(100).unwrap(), 0);
        assert_eq!(a.peak_brk(), 4096);
    }

    #[test]
    fn trim_to_same_brk_is_noop() {
        let mut a = Arena::unbounded();
        a.sbrk(64).unwrap();
        a.trim(64);
        assert_eq!(a.trim_calls(), 0);
    }

    #[test]
    #[should_panic(expected = "beyond current brk")]
    fn trim_cannot_grow() {
        let mut a = Arena::unbounded();
        a.sbrk(10).unwrap();
        a.trim(20);
    }

    #[test]
    fn reset_preserves_limit() {
        let mut a = Arena::with_limit(1024);
        a.sbrk(512).unwrap();
        a.reset();
        assert_eq!(a.brk(), 0);
        assert_eq!(a.peak_brk(), 0);
        assert_eq!(a.limit(), Some(1024));
    }
}
