//! The boundary-tag block store: an intrusive neighbour list over the
//! tiled arena.
//!
//! Every byte the arena has handed out belongs to exactly one
//! [`TiledBlock`], free or used — the *tiling invariant*. [`Tiling`] is the
//! simulation's ground truth, replacing the offset-keyed `BTreeMap` of
//! [`BlockMap`](crate::heap::block::BlockMap): blocks live in a slab and
//! carry prev/next neighbour handles, exactly like the boundary tags of a
//! real manager, so the operations the policy engine performs per event —
//! neighbour lookup, split, coalesce-with-neighbours, top access — are all
//! O(1) instead of O(log n).
//!
//! # Handles and invariants
//!
//! Blocks are addressed by [`BlockRef`] — a stable slab slot that never
//! moves while its block exists. The invariants every user must maintain
//! (and [`Tiling::check_tiling`] verifies):
//!
//! - the neighbour list is ordered by address, starts at offset 0 and ends
//!   at the arena break with no gaps or overlaps (`prev.end() == next.offset`
//!   for every adjacent pair);
//! - a block's **offset never changes** while it is in the store — splits
//!   shrink a block in place and insert the remainder after it, coalesces
//!   extend the survivor and remove the absorbed neighbour;
//! - all mutation goes through the `Tiling` methods below (there is no
//!   `&mut TiledBlock` escape hatch), which is what keeps the debug-only
//!   shadow oracle in lock-step.
//!
//! # The shadow oracle
//!
//! In debug builds the store additionally mirrors every block into the old
//! `BTreeMap`-backed [`BlockMap`](crate::heap::block::BlockMap).
//! [`Tiling::check_tiling`] walks the neighbour list and cross-checks the
//! sequence — span, state, requested bytes and pool of every block — against
//! that oracle, so any divergence between the intrusive list and the
//! reference implementation fails loudly at the operation that caused it.
//! Release builds carry no shadow and pay nothing.

use crate::heap::block::{Block, BlockState, Span};

/// Sentinel slot meaning "no neighbour".
const NIL: u32 = u32::MAX;

/// A stable handle to one block in a [`Tiling`].
///
/// Valid from the insertion that returned it until the block is removed;
/// never invalidated by operations on other blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockRef(u32);

impl BlockRef {
    /// The raw slot index (for embedding in compact externals like
    /// [`BlockHandle`](crate::manager::BlockHandle)).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuild a handle from [`BlockRef::index`]. The caller asserts the
    /// slot still names the block it was taken from ([`Tiling::get`]
    /// panics on vacant slots; stale-but-reused slots must be detected by
    /// the caller, e.g. by comparing offsets).
    pub fn from_index(index: u32) -> BlockRef {
        BlockRef(index)
    }
}

/// One block of the tiled arena, with its intrusive neighbour links.
#[derive(Debug, Clone, Copy)]
pub struct TiledBlock {
    /// The bytes this block covers.
    pub span: Span,
    /// Free or used.
    pub state: BlockState,
    /// Bytes the application requested (payload), meaningful when used.
    pub requested: usize,
    /// Pool the block currently belongs to.
    pub pool: usize,
    /// Token of this block's node in its pool's free index (meaningful
    /// only while the block is free and indexed). Not part of the modelled
    /// block — it is how the simulator finds the index node in O(1).
    pub index_token: usize,
    prev: u32,
    next: u32,
    occupied: bool,
}

impl TiledBlock {
    /// Whether the block is free.
    pub fn is_free(&self) -> bool {
        self.state == BlockState::Free
    }

    /// Project the modelled fields into the classic [`Block`] record.
    pub fn as_block(&self) -> Block {
        Block {
            span: self.span,
            state: self.state,
            requested: self.requested,
            pool: self.pool,
        }
    }
}

/// The slab-backed boundary-tag block store. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Tiling {
    slots: Vec<TiledBlock>,
    free_slots: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    /// Debug-only shadow oracle: the PR 4 `BTreeMap` tiling, mirrored on
    /// every mutation and cross-checked by [`Tiling::check_tiling`].
    #[cfg(debug_assertions)]
    shadow: crate::heap::block::BlockMap,
}

impl Tiling {
    /// An empty store.
    pub fn new() -> Self {
        Tiling {
            slots: Vec::new(),
            free_slots: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            #[cfg(debug_assertions)]
            shadow: crate::heap::block::BlockMap::new(),
        }
    }

    /// Number of blocks (free + used).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no blocks at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The block `r` names.
    ///
    /// # Panics
    ///
    /// Panics if `r` names a vacant slot (a removed block).
    pub fn get(&self, r: BlockRef) -> &TiledBlock {
        let b = &self.slots[r.0 as usize];
        assert!(b.occupied, "stale BlockRef {}", r.0);
        b
    }

    /// Whether `r` currently names a live block (stale handles name vacant
    /// or recycled slots; recycled slots are the caller's to detect by
    /// offset comparison).
    pub fn is_live(&self, r: BlockRef) -> bool {
        (r.0 as usize) < self.slots.len() && self.slots[r.0 as usize].occupied
    }

    /// First block in address order (offset 0), if any.
    pub fn first(&self) -> Option<BlockRef> {
        (self.head != NIL).then_some(BlockRef(self.head))
    }

    /// Top-most block (highest offset), if any.
    pub fn top(&self) -> Option<BlockRef> {
        (self.tail != NIL).then_some(BlockRef(self.tail))
    }

    /// The physical neighbour after `r`.
    pub fn next(&self, r: BlockRef) -> Option<BlockRef> {
        let n = self.get(r).next;
        (n != NIL).then_some(BlockRef(n))
    }

    /// The physical neighbour before `r`.
    pub fn prev(&self, r: BlockRef) -> Option<BlockRef> {
        let p = self.get(r).prev;
        (p != NIL).then_some(BlockRef(p))
    }

    /// Iterate blocks in address order.
    pub fn iter(&self) -> TilingIter<'_> {
        TilingIter {
            tiling: self,
            cur: self.head,
        }
    }

    fn alloc_slot(&mut self, block: TiledBlock) -> u32 {
        debug_assert!(block.span.len > 0, "zero-length block");
        match self.free_slots.pop() {
            Some(s) => {
                debug_assert!(!self.slots[s as usize].occupied);
                self.slots[s as usize] = block;
                s
            }
            None => {
                self.slots.push(block);
                (self.slots.len() - 1) as u32
            }
        }
    }

    #[cfg(debug_assertions)]
    fn shadow_insert(&mut self, b: &TiledBlock) {
        self.shadow.insert(b.as_block());
    }

    /// Append a free or used block at the top of the tiling. Its offset
    /// must equal the current end of the tiling (0 when empty).
    pub fn push_top(&mut self, block: Block) -> BlockRef {
        debug_assert_eq!(
            block.span.offset,
            self.top().map_or(0, |t| self.get(t).span.end()),
            "push_top must extend the tiling contiguously"
        );
        let old_tail = self.tail;
        let node = TiledBlock {
            span: block.span,
            state: block.state,
            requested: block.requested,
            pool: block.pool,
            index_token: 0,
            prev: old_tail,
            next: NIL,
            occupied: true,
        };
        let slot = self.alloc_slot(node);
        if old_tail != NIL {
            self.slots[old_tail as usize].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.len += 1;
        #[cfg(debug_assertions)]
        {
            let b = self.slots[slot as usize];
            self.shadow_insert(&b);
        }
        BlockRef(slot)
    }

    /// Insert a block immediately after `anchor`. The block must tile
    /// exactly against its neighbours (`anchor.end() == block.offset`).
    pub fn insert_after(&mut self, anchor: BlockRef, block: Block) -> BlockRef {
        debug_assert_eq!(
            self.get(anchor).span.end(),
            block.span.offset,
            "insert_after must tile against the anchor"
        );
        let anchor_next = self.get(anchor).next;
        let node = TiledBlock {
            span: block.span,
            state: block.state,
            requested: block.requested,
            pool: block.pool,
            index_token: 0,
            prev: anchor.0,
            next: anchor_next,
            occupied: true,
        };
        let slot = self.alloc_slot(node);
        self.slots[anchor.0 as usize].next = slot;
        if anchor_next != NIL {
            self.slots[anchor_next as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.len += 1;
        #[cfg(debug_assertions)]
        {
            let b = self.slots[slot as usize];
            self.shadow_insert(&b);
        }
        BlockRef(slot)
    }

    /// Remove the block `r` names, returning its record. Neighbours are
    /// relinked around the hole (the caller is responsible for the tiling
    /// invariant — removal is only legal mid-merge or at the trimmed top).
    pub fn remove(&mut self, r: BlockRef) -> Block {
        let (prev, next, block) = {
            let b = self.get(r);
            (b.prev, b.next, b.as_block())
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[r.0 as usize].occupied = false;
        self.free_slots.push(r.0);
        self.len -= 1;
        #[cfg(debug_assertions)]
        {
            let gone = self.shadow.remove(block.span.offset);
            debug_assert!(gone.is_some(), "shadow missed block at {}", block.span.offset);
        }
        block
    }

    /// Change the block's length in place (split shrink / coalesce grow /
    /// top extension). The offset is immutable by design.
    pub fn set_len(&mut self, r: BlockRef, new_len: usize) {
        debug_assert!(new_len > 0, "zero-length block");
        let slot = r.0 as usize;
        assert!(self.slots[slot].occupied, "stale BlockRef {}", r.0);
        self.slots[slot].span = Span::new(self.slots[slot].span.offset, new_len);
        #[cfg(debug_assertions)]
        {
            let b = self.slots[slot];
            let sh = self
                .shadow
                .get_mut(b.span.offset)
                .expect("shadow tracks every block");
            sh.span = b.span;
        }
    }

    /// Mark the block used by the application.
    pub fn set_used(&mut self, r: BlockRef, requested: usize, pool: usize) {
        let slot = r.0 as usize;
        assert!(self.slots[slot].occupied, "stale BlockRef {}", r.0);
        self.slots[slot].state = BlockState::Used;
        self.slots[slot].requested = requested;
        self.slots[slot].pool = pool;
        #[cfg(debug_assertions)]
        self.shadow_sync(slot);
    }

    /// Mark the block free and assign its pool.
    pub fn set_free(&mut self, r: BlockRef, pool: usize) {
        let slot = r.0 as usize;
        assert!(self.slots[slot].occupied, "stale BlockRef {}", r.0);
        self.slots[slot].state = BlockState::Free;
        self.slots[slot].requested = 0;
        self.slots[slot].pool = pool;
        #[cfg(debug_assertions)]
        self.shadow_sync(slot);
    }

    /// Re-home the block to another pool, keeping its state.
    pub fn set_pool(&mut self, r: BlockRef, pool: usize) {
        let slot = r.0 as usize;
        assert!(self.slots[slot].occupied, "stale BlockRef {}", r.0);
        self.slots[slot].pool = pool;
        #[cfg(debug_assertions)]
        self.shadow_sync(slot);
    }

    /// Update the requested-payload field of a used block (realloc in
    /// place).
    pub fn set_requested(&mut self, r: BlockRef, requested: usize) {
        let slot = r.0 as usize;
        assert!(self.slots[slot].occupied, "stale BlockRef {}", r.0);
        debug_assert_eq!(self.slots[slot].state, BlockState::Used);
        self.slots[slot].requested = requested;
        #[cfg(debug_assertions)]
        self.shadow_sync(slot);
    }

    /// Record the block's node token in its pool's free index. Simulator
    /// bookkeeping only — the shadow oracle does not track it.
    pub fn set_index_token(&mut self, r: BlockRef, token: usize) {
        let slot = r.0 as usize;
        assert!(self.slots[slot].occupied, "stale BlockRef {}", r.0);
        self.slots[slot].index_token = token;
    }

    #[cfg(debug_assertions)]
    fn shadow_sync(&mut self, slot: usize) {
        let b = self.slots[slot];
        let sh = self
            .shadow
            .get_mut(b.span.offset)
            .expect("shadow tracks every block");
        *sh = b.as_block();
    }

    /// Linear fallback lookup by offset (stale or externally-minted
    /// handles only — every hot path resolves blocks through [`BlockRef`]).
    pub fn find_by_offset(&self, offset: usize) -> Option<BlockRef> {
        let mut steps = 0u64;
        self.find_by_offset_charged(offset, &mut steps)
    }

    /// [`Tiling::find_by_offset`], charging one step per block visited —
    /// the modelled cost of the linear scan a manager performs to resolve
    /// a handle that carries no slot.
    pub fn find_by_offset_charged(&self, offset: usize, steps: &mut u64) -> Option<BlockRef> {
        for (r, b) in self.iter() {
            *steps += 1;
            if b.span.offset == offset {
                return Some(r);
            }
        }
        None
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_slots.clear();
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
        #[cfg(debug_assertions)]
        self.shadow.clear();
    }

    /// Verify the tiling invariant against an arena of size `brk`: blocks
    /// start at 0, are contiguous, non-overlapping, end at `brk`, and the
    /// prev links mirror the next links. Debug builds additionally
    /// cross-check the whole block sequence against the shadow
    /// [`BlockMap`](crate::heap::block::BlockMap) oracle.
    ///
    /// Returns a description of the first violation, if any.
    pub fn check_tiling(&self, brk: usize) -> Option<String> {
        let mut cursor = 0usize;
        let mut prev: u32 = NIL;
        let mut cur = self.head;
        let mut count = 0usize;
        while cur != NIL {
            let b = &self.slots[cur as usize];
            if !b.occupied {
                return Some(format!("linked slot {cur} is vacant"));
            }
            if b.prev != prev {
                return Some(format!(
                    "block at {}: prev link {} disagrees with walk ({prev})",
                    b.span.offset, b.prev
                ));
            }
            if b.span.offset != cursor {
                return Some(format!(
                    "gap or overlap: expected block at {cursor}, found {}",
                    b.span.offset
                ));
            }
            if b.span.len == 0 {
                return Some(format!("zero-length block at {}", b.span.offset));
            }
            cursor = b.span.end();
            prev = cur;
            cur = b.next;
            count += 1;
            if count > self.len {
                return Some("neighbour list is cyclic".into());
            }
        }
        if prev != self.tail {
            return Some(format!("tail {} disagrees with walk ({prev})", self.tail));
        }
        if count != self.len {
            return Some(format!("len {} but walked {count} blocks", self.len));
        }
        if cursor != brk {
            return Some(format!("tiling ends at {cursor}, arena brk is {brk}"));
        }
        #[cfg(debug_assertions)]
        {
            if let Some(err) = self.shadow.check_tiling(brk) {
                return Some(format!("shadow oracle: {err}"));
            }
            if self.shadow.len() != self.len {
                return Some(format!(
                    "shadow oracle holds {} blocks, list holds {}",
                    self.shadow.len(),
                    self.len
                ));
            }
            for ((_, b), oracle) in self.iter().zip(self.shadow.iter()) {
                if b.as_block() != *oracle {
                    return Some(format!(
                        "divergence from the shadow oracle at {}: {:?} vs {:?}",
                        oracle.span.offset,
                        b.as_block(),
                        oracle
                    ));
                }
            }
        }
        None
    }
}

/// Address-order iterator over a [`Tiling`].
#[derive(Debug)]
pub struct TilingIter<'a> {
    tiling: &'a Tiling,
    cur: u32,
}

impl<'a> Iterator for TilingIter<'a> {
    type Item = (BlockRef, &'a TiledBlock);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let slot = self.cur;
        let b = &self.tiling.slots[slot as usize];
        self.cur = b.next;
        Some((BlockRef(slot), b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free(offset: usize, len: usize) -> Block {
        Block::free(Span::new(offset, len), 0)
    }

    #[test]
    fn push_top_builds_an_ordered_list() {
        let mut t = Tiling::new();
        let a = t.push_top(free(0, 16));
        let b = t.push_top(free(16, 32));
        let c = t.push_top(free(48, 16));
        assert_eq!(t.len(), 3);
        assert_eq!(t.first(), Some(a));
        assert_eq!(t.top(), Some(c));
        assert_eq!(t.next(a), Some(b));
        assert_eq!(t.next(b), Some(c));
        assert_eq!(t.next(c), None);
        assert_eq!(t.prev(b), Some(a));
        assert_eq!(t.prev(a), None);
        assert!(t.check_tiling(64).is_none());
        assert!(t.check_tiling(65).is_some());
    }

    #[test]
    fn insert_after_splices_mid_list() {
        let mut t = Tiling::new();
        let a = t.push_top(free(0, 64));
        t.set_len(a, 16);
        let b = t.insert_after(a, free(16, 48));
        assert_eq!(t.next(a), Some(b));
        assert_eq!(t.top(), Some(b));
        t.set_len(b, 16);
        let c = t.insert_after(b, free(32, 32));
        assert_eq!(t.top(), Some(c));
        assert_eq!(t.prev(c), Some(b));
        assert!(t.check_tiling(64).is_none());
    }

    #[test]
    fn remove_relinks_neighbours_and_recycles_slots() {
        let mut t = Tiling::new();
        let a = t.push_top(free(0, 16));
        let b = t.push_top(free(16, 16));
        let c = t.push_top(free(32, 16));
        t.remove(b);
        t.set_len(a, 32); // a absorbs b's bytes: tiling restored
        assert_eq!(t.next(a), Some(c));
        assert_eq!(t.prev(c), Some(a));
        assert!(t.check_tiling(48).is_none());
        assert!(!t.is_live(b));
        // The freed slot is recycled by the next insertion.
        let d = t.insert_after(c, free(48, 8));
        assert_eq!(d.index(), b.index());
        assert!(t.is_live(d));
        assert!(t.check_tiling(56).is_none());
    }

    #[test]
    fn remove_tail_and_head_update_anchors() {
        let mut t = Tiling::new();
        let a = t.push_top(free(0, 16));
        let b = t.push_top(free(16, 16));
        t.remove(b);
        assert_eq!(t.top(), Some(a));
        assert!(t.check_tiling(16).is_none());
        t.remove(a);
        assert!(t.is_empty());
        assert_eq!(t.first(), None);
        assert_eq!(t.top(), None);
        assert!(t.check_tiling(0).is_none());
    }

    #[test]
    fn state_mutators_keep_the_shadow_in_step() {
        let mut t = Tiling::new();
        let a = t.push_top(free(0, 64));
        t.set_used(a, 60, 3);
        assert_eq!(t.get(a).state, BlockState::Used);
        assert_eq!(t.get(a).requested, 60);
        assert_eq!(t.get(a).pool, 3);
        assert!(t.check_tiling(64).is_none());
        t.set_requested(a, 50);
        t.set_free(a, 1);
        t.set_pool(a, 2);
        assert_eq!(t.get(a).pool, 2);
        assert!(t.get(a).is_free());
        assert!(t.check_tiling(64).is_none());
    }

    #[test]
    fn find_by_offset_resolves_and_misses() {
        let mut t = Tiling::new();
        let _ = t.push_top(free(0, 16));
        let b = t.push_top(free(16, 16));
        assert_eq!(t.find_by_offset(16), Some(b));
        assert_eq!(t.find_by_offset(8), None);
        assert_eq!(t.find_by_offset(999), None);
    }

    #[test]
    fn check_tiling_detects_gaps() {
        let mut t = Tiling::new();
        let a = t.push_top(free(0, 16));
        let _ = t.push_top(free(16, 16));
        // Shrink the first block without inserting a filler: gap at 8..16.
        t.set_len(a, 8);
        let err = t.check_tiling(32).expect("gap must be detected");
        assert!(err.contains("expected block at 8"), "{err}");
    }

    #[test]
    #[should_panic(expected = "stale BlockRef")]
    fn stale_ref_is_rejected() {
        let mut t = Tiling::new();
        let a = t.push_top(free(0, 16));
        t.remove(a);
        let _ = t.get(a);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = Tiling::new();
        let _ = t.push_top(free(0, 16));
        let _ = t.push_top(free(16, 16));
        t.clear();
        assert!(t.is_empty());
        assert!(t.check_tiling(0).is_none());
        let a = t.push_top(free(0, 32));
        assert_eq!(t.first(), Some(a));
        assert!(t.check_tiling(32).is_none());
    }

    #[test]
    fn iter_yields_address_order() {
        let mut t = Tiling::new();
        let mut expect = Vec::new();
        for i in 0..10 {
            t.push_top(free(i * 8, 8));
            expect.push(i * 8);
        }
        let got: Vec<usize> = t.iter().map(|(_, b)| b.span.offset).collect();
        assert_eq!(got, expect);
    }
}
