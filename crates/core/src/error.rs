//! Error types shared by the whole `dmm` workspace.

use std::fmt;

/// Result alias used across the crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Error raised by heap, manager and methodology operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The arena could not satisfy a request (only possible when an arena
    /// capacity limit is configured).
    OutOfMemory {
        /// Bytes that were requested from the system.
        requested: usize,
        /// Configured capacity limit that was exceeded.
        limit: usize,
    },
    /// A handle was freed twice or never allocated.
    InvalidFree {
        /// Offset carried by the offending handle.
        offset: usize,
    },
    /// A configuration combines leaves that the interdependency rules forbid.
    InvalidConfig(String),
    /// A trace replay referenced an unknown allocation id.
    UnknownTraceId(u64),
    /// A trace is malformed (e.g. double-free of a trace id).
    MalformedTrace(String),
    /// The methodology was asked to explore an empty candidate set.
    EmptySearchSpace(String),
    /// A replay exceeded its per-candidate step budget (fault-tolerant
    /// exploration aborts the candidate instead of letting a pathological
    /// configuration hang a worker).
    BudgetExceeded {
        /// Search steps spent when the budget tripped.
        spent: u64,
        /// The configured step budget.
        limit: u64,
    },
    /// A candidate's replay panicked and was caught at the engine's
    /// quarantine boundary (`EX001`). Carries the candidate's structural
    /// fingerprint so the offender is identifiable across resumes.
    CandidatePanicked {
        /// [`DmConfig::fingerprint`](crate::space::config::DmConfig::fingerprint)
        /// of the panicking candidate.
        fingerprint: u64,
        /// The panic payload, best-effort stringified.
        reason: String,
    },
    /// A shard worker's exploration panicked (worker death, `EX003` when
    /// retried). Wrapped in [`Error::ShardFailed`] once retries are
    /// exhausted.
    WorkerDied {
        /// The panic payload, best-effort stringified.
        reason: String,
    },
    /// A shard's exploration failed permanently — every bounded retry was
    /// exhausted (`EX004`). Sharded exploration surfaces this instead of
    /// silently merging a partial result as if it were complete.
    ShardFailed {
        /// Index of the failing shard in trace order.
        shard: usize,
        /// Attempts made (initial try plus retries).
        attempts: usize,
        /// The last attempt's failure.
        cause: Box<Error>,
    },
    /// A durable trace file is malformed. `code` is the stable `TR0xx`
    /// diagnostic (`TR010` bad header, `TR011` truncated frame, `TR012`
    /// checksum mismatch); recovery readers can still salvage the valid
    /// prefix (see `trace::store::recover_trace`).
    TraceStore {
        /// Stable diagnostic code (`TR010`/`TR011`/`TR012`).
        code: String,
        /// Human-readable description of the corruption.
        message: String,
    },
    /// The checkpoint journal could not be opened, read or appended.
    Checkpoint(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfMemory { requested, limit } => write!(
                f,
                "out of memory: requested {requested} bytes from an arena limited to {limit} bytes"
            ),
            Error::InvalidFree { offset } => {
                write!(f, "invalid free: no live block at offset {offset}")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid manager configuration: {msg}"),
            Error::UnknownTraceId(id) => write!(f, "trace references unknown allocation id {id}"),
            Error::MalformedTrace(msg) => write!(f, "malformed trace: {msg}"),
            Error::EmptySearchSpace(msg) => write!(f, "empty search space: {msg}"),
            Error::BudgetExceeded { spent, limit } => write!(
                f,
                "candidate budget exceeded: {spent} search steps spent against a budget of {limit}"
            ),
            Error::CandidatePanicked {
                fingerprint,
                reason,
            } => write!(
                f,
                "candidate {fingerprint:016x} panicked during replay: {reason}"
            ),
            Error::WorkerDied { reason } => write!(f, "shard worker died: {reason}"),
            Error::ShardFailed {
                shard,
                attempts,
                cause,
            } => write!(
                f,
                "shard {shard} failed permanently after {attempts} attempt(s): {cause}"
            ),
            Error::TraceStore { code, message } => {
                write!(f, "trace store: {code}: {message}")
            }
            Error::Checkpoint(msg) => write!(f, "checkpoint journal: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::OutOfMemory {
                requested: 10,
                limit: 5,
            },
            Error::InvalidFree { offset: 64 },
            Error::InvalidConfig("bad".into()),
            Error::UnknownTraceId(7),
            Error::MalformedTrace("dup".into()),
            Error::EmptySearchSpace("no leaves".into()),
            Error::BudgetExceeded {
                spent: 1000,
                limit: 500,
            },
            Error::CandidatePanicked {
                fingerprint: 0xDEAD,
                reason: "boom".into(),
            },
            Error::WorkerDied {
                reason: "boom".into(),
            },
            Error::ShardFailed {
                shard: 2,
                attempts: 3,
                cause: Box::new(Error::InvalidConfig("bad".into())),
            },
            Error::TraceStore {
                code: "TR011".into(),
                message: "truncated frame".into(),
            },
            Error::Checkpoint("cannot open".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            // C-GOOD-ERR: concise, no trailing punctuation.
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
