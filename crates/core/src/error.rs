//! Error types shared by the whole `dmm` workspace.

use std::fmt;

/// Result alias used across the crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Error raised by heap, manager and methodology operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The arena could not satisfy a request (only possible when an arena
    /// capacity limit is configured).
    OutOfMemory {
        /// Bytes that were requested from the system.
        requested: usize,
        /// Configured capacity limit that was exceeded.
        limit: usize,
    },
    /// A handle was freed twice or never allocated.
    InvalidFree {
        /// Offset carried by the offending handle.
        offset: usize,
    },
    /// A configuration combines leaves that the interdependency rules forbid.
    InvalidConfig(String),
    /// A trace replay referenced an unknown allocation id.
    UnknownTraceId(u64),
    /// A trace is malformed (e.g. double-free of a trace id).
    MalformedTrace(String),
    /// The methodology was asked to explore an empty candidate set.
    EmptySearchSpace(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfMemory { requested, limit } => write!(
                f,
                "out of memory: requested {requested} bytes from an arena limited to {limit} bytes"
            ),
            Error::InvalidFree { offset } => {
                write!(f, "invalid free: no live block at offset {offset}")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid manager configuration: {msg}"),
            Error::UnknownTraceId(id) => write!(f, "trace references unknown allocation id {id}"),
            Error::MalformedTrace(msg) => write!(f, "malformed trace: {msg}"),
            Error::EmptySearchSpace(msg) => write!(f, "empty search space: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::OutOfMemory {
                requested: 10,
                limit: 5,
            },
            Error::InvalidFree { offset: 64 },
            Error::InvalidConfig("bad".into()),
            Error::UnknownTraceId(7),
            Error::MalformedTrace("dup".into()),
            Error::EmptySearchSpace("no leaves".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            // C-GOOD-ERR: concise, no trailing punctuation.
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
