//! # dmm-vision
//!
//! The 3D-image-reconstruction substrate — the paper's second case study.
//! A stand-in for the Target Jr / Pollefeys metric-reconstruction
//! sub-algorithm (1.75 MLoC of C++ we cannot ship): synthetic image pairs
//! with known camera displacement, Harris-style corner detection, NCC
//! matching and robust displacement estimation. The pipeline's dynamic
//! memory — image buffers "over 1 Mb" each, input-dependent corner and
//! match arrays — flows through the [`dmm_core::manager::Allocator`] under
//! test.
//!
//! What the substitution preserves (see DESIGN.md): bursts of many small
//! records whose count is unpredictable at compile time, large image
//! buffers with frame-overlapping lifetimes, and randomized access
//! patterns that defeat static layout optimisation — the properties the
//! paper's DM analysis relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corners;
pub mod image;
pub mod matching;
pub mod recon;

pub use corners::{detect_corners, Corner, CornerParams};
pub use image::{Image, SyntheticScene};
pub use matching::{estimate_displacement, match_corners, Match, MatchParams};
pub use recon::{run_reconstruction, ReconConfig, ReconStats};
