//! The reconstruction driver: the complete case-study application.
//!
//! Mirrors the paper's second case study — one sub-algorithm of a metric 3D
//! reconstruction pipeline "where the relative displacement between frames
//! is used to reconstruct the 3rd dimension". Per frame pair the driver:
//!
//! 1. allocates both image buffers from the manager under test;
//! 2. detects corners, growing corner arrays through [`DynVec`]
//!    (the input-dependent candidate lists);
//! 3. matches corners (match array + per-corner NCC patch scratch);
//! 4. estimates the displacement and compares it to the ground truth;
//! 5. frees the frame's structures; the second image carries over as the
//!    next reference frame, so image lifetimes overlap frames.

use serde::{Deserialize, Serialize};

use dmm_core::dynvec::DynVec;
use dmm_core::error::Result;
use dmm_core::manager::Allocator;

use crate::corners::{detect_corners, CornerParams, CORNER_RECORD_BYTES};
use crate::image::SyntheticScene;
use crate::matching::{estimate_displacement, match_corners, MatchParams, MATCH_RECORD_BYTES};

/// Configuration of a reconstruction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconConfig {
    /// Scene seed.
    pub seed: u64,
    /// Number of frame pairs to process.
    pub frames: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of scene features.
    pub features: usize,
}

impl Default for ReconConfig {
    fn default() -> Self {
        // The paper's 640x480; tests use `small()`.
        ReconConfig {
            seed: 1,
            frames: 6,
            width: 640,
            height: 480,
            features: 180,
        }
    }
}

impl ReconConfig {
    /// A fast configuration for unit tests.
    pub fn small(seed: u64) -> Self {
        ReconConfig {
            seed,
            frames: 3,
            width: 200,
            height: 150,
            features: 24,
        }
    }
}

/// Outcome of a reconstruction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconStats {
    /// Frame pairs processed.
    pub frames: usize,
    /// Corners detected across all frames.
    pub corners: usize,
    /// Matches accepted across all frames.
    pub matches: usize,
    /// Mean absolute displacement-estimation error in pixels.
    pub mean_abs_error: f64,
}

/// Ground-truth camera path: a gentle pan with drift.
fn truth_displacement(frame: usize) -> (f64, f64) {
    let f = frame as f64 + 1.0;
    (2.0 * f, (f * 1.3).sin() * 3.0)
}

/// Run the reconstruction case study on `alloc`.
///
/// # Errors
///
/// Propagates allocator failures.
pub fn run_reconstruction(alloc: &mut dyn Allocator, cfg: &ReconConfig) -> Result<ReconStats> {
    let scene = SyntheticScene::new(cfg.seed, cfg.width, cfg.height, cfg.features);
    let corner_params = CornerParams::default();
    let match_params = MatchParams::default();

    let mut stats = ReconStats {
        frames: 0,
        corners: 0,
        matches: 0,
        mean_abs_error: 0.0,
    };
    let mut err_sum = 0.0;

    // Reference frame: image buffer lives in the manager under test.
    let img_bytes = cfg.width * cfg.height;
    let mut prev_img = scene.render(0.0, 0.0);
    let mut prev_handle = alloc.alloc(img_bytes)?;
    let mut prev_truth = (0.0, 0.0);

    for frame in 0..cfg.frames {
        let (tx, ty) = truth_displacement(frame);
        let cur_img = scene.render(tx, ty);
        let cur_handle = alloc.alloc(img_bytes)?;

        // Corner detection: candidate arrays grow through the manager.
        let corners_a = detect_corners(&prev_img, corner_params);
        let corners_b = detect_corners(&cur_img, corner_params);
        let mut vec_a = DynVec::new(CORNER_RECORD_BYTES);
        for _ in &corners_a {
            vec_a.push(alloc)?;
        }
        let mut vec_b = DynVec::new(CORNER_RECORD_BYTES);
        for _ in &corners_b {
            vec_b.push(alloc)?;
        }

        // NCC scratch: one 7x7 patch pair per reference corner.
        let mut scratch = Vec::with_capacity(corners_a.len());
        for _ in &corners_a {
            scratch.push(alloc.alloc(2 * 49)?);
        }
        let matches = match_corners(&prev_img, &corners_a, &cur_img, &corners_b, match_params);
        for h in scratch {
            alloc.free(h)?;
        }

        let mut vec_m = DynVec::new(MATCH_RECORD_BYTES);
        for _ in &matches {
            vec_m.push(alloc)?;
        }

        // Displacement relative to the previous frame.
        let est = estimate_displacement(&matches);
        let truth = (tx - prev_truth.0, ty - prev_truth.1);
        if let Some((ex, ey)) = est {
            err_sum += (ex - truth.0).abs() + (ey - truth.1).abs();
        } else {
            err_sum += truth.0.abs() + truth.1.abs();
        }

        stats.frames += 1;
        stats.corners += corners_a.len() + corners_b.len();
        stats.matches += matches.len();

        // Tear down the frame; the current image becomes the reference.
        vec_a.destroy(alloc)?;
        vec_b.destroy(alloc)?;
        vec_m.destroy(alloc)?;
        alloc.free(prev_handle)?;
        prev_handle = cur_handle;
        prev_img = cur_img;
        prev_truth = (tx, ty);
    }
    alloc.free(prev_handle)?;

    stats.mean_abs_error = err_sum / (2.0 * cfg.frames.max(1) as f64);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_core::manager::PolicyAllocator;
    use dmm_core::space::presets;
    use dmm_core::trace::RecordingAllocator;

    #[test]
    fn pipeline_is_accurate_and_leak_free() {
        let mut alloc = RecordingAllocator::new();
        let stats = run_reconstruction(&mut alloc, &ReconConfig::small(1)).unwrap();
        assert_eq!(stats.frames, 3);
        assert!(stats.corners > 30, "corners: {}", stats.corners);
        assert!(stats.matches > 10, "matches: {}", stats.matches);
        assert!(
            stats.mean_abs_error < 1.5,
            "estimation error too high: {}",
            stats.mean_abs_error
        );
        assert_eq!(alloc.stats().live_requested, 0, "leak");
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut alloc = RecordingAllocator::new();
            run_reconstruction(&mut alloc, &ReconConfig::small(2)).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_mixes_large_and_small_blocks() {
        // The DM stress of this case study: >=30 KiB image buffers next to
        // 16-byte record arrays.
        let mut alloc = RecordingAllocator::new();
        let cfg = ReconConfig::small(3);
        run_reconstruction(&mut alloc, &cfg).unwrap();
        let trace = alloc.finish().unwrap();
        let profile = dmm_core::profile::Profile::of(&trace);
        let sizes: Vec<usize> = profile.histogram.iter().map(|(s, _)| s).collect();
        assert!(sizes.iter().any(|&s| s >= cfg.width * cfg.height));
        assert!(sizes.iter().any(|&s| s <= 128));
        assert!(profile.has_variable_sizes());
    }

    #[test]
    fn runs_on_policy_allocator_with_invariants() {
        let mut alloc = PolicyAllocator::new(presets::drr_paper()).unwrap();
        run_reconstruction(&mut alloc, &ReconConfig::small(4)).unwrap();
        alloc.check_invariants().unwrap();
        assert_eq!(alloc.stats().live_requested, 0);
    }

    #[test]
    fn image_lifetimes_overlap_frames() {
        // At any instant two image buffers are live (prev + cur): the peak
        // live bytes must reflect both.
        let mut alloc = RecordingAllocator::new();
        let cfg = ReconConfig::small(5);
        run_reconstruction(&mut alloc, &cfg).unwrap();
        let trace = alloc.finish().unwrap();
        assert!(trace.peak_live_requested() >= 2 * cfg.width * cfg.height);
    }
}
