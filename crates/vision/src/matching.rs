//! Corner matching by normalised cross-correlation (NCC).
//!
//! For every corner of the reference image, candidate corners of the second
//! image within a search radius are compared over a 7×7 patch; the best
//! NCC score above a threshold becomes a match. Candidate-list sizes are
//! input-dependent, which is exactly the dynamic behaviour the paper
//! profiles ("number of possible corners to match varies on each image").

use crate::corners::Corner;
use crate::image::Image;

/// A corner correspondence between two images.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Corner position in the reference image.
    pub from: (usize, usize),
    /// Corner position in the second image.
    pub to: (usize, usize),
    /// NCC score in [−1, 1] scaled by 1000 (fixed point).
    pub score: i32,
}

/// Size in bytes of a match record on the modelled target.
pub const MATCH_RECORD_BYTES: usize = 24;

/// Matcher parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchParams {
    /// Search radius around the expected position, in pixels.
    pub search_radius: f64,
    /// Minimum accepted NCC score (scaled by 1000).
    pub min_score: i32,
}

impl Default for MatchParams {
    fn default() -> Self {
        MatchParams {
            search_radius: 24.0,
            min_score: 600,
        }
    }
}

const PATCH: isize = 3; // 7x7 patch

fn ncc(a: &Image, ax: usize, ay: usize, b: &Image, bx: usize, by: usize) -> i32 {
    let n = ((2 * PATCH + 1) * (2 * PATCH + 1)) as i64;
    let (mut sa, mut sb) = (0i64, 0i64);
    for oy in -PATCH..=PATCH {
        for ox in -PATCH..=PATCH {
            sa += a.at(ax as isize + ox, ay as isize + oy) as i64;
            sb += b.at(bx as isize + ox, by as isize + oy) as i64;
        }
    }
    let (ma, mb) = (sa / n, sb / n);
    let (mut cov, mut va, mut vb) = (0i64, 0i64, 0i64);
    for oy in -PATCH..=PATCH {
        for ox in -PATCH..=PATCH {
            let da = a.at(ax as isize + ox, ay as isize + oy) as i64 - ma;
            let db = b.at(bx as isize + ox, by as isize + oy) as i64 - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
    }
    if va == 0 || vb == 0 {
        return 0;
    }
    let denom = ((va as f64).sqrt() * (vb as f64).sqrt()).max(1.0);
    (cov as f64 / denom * 1000.0) as i32
}

/// Match corners of `a` against corners of `b`.
///
/// Returns one best match per reference corner (greedy, score-thresholded).
pub fn match_corners(
    img_a: &Image,
    corners_a: &[Corner],
    img_b: &Image,
    corners_b: &[Corner],
    params: MatchParams,
) -> Vec<Match> {
    let mut matches = Vec::new();
    for ca in corners_a {
        let mut best: Option<Match> = None;
        for cb in corners_b {
            let dx = cb.x as f64 - ca.x as f64;
            let dy = cb.y as f64 - ca.y as f64;
            if dx * dx + dy * dy > params.search_radius * params.search_radius {
                continue;
            }
            let score = ncc(img_a, ca.x, ca.y, img_b, cb.x, cb.y);
            if score >= params.min_score
                && best.is_none_or(|m| score > m.score)
            {
                best = Some(Match {
                    from: (ca.x, ca.y),
                    to: (cb.x, cb.y),
                    score,
                });
            }
        }
        if let Some(m) = best {
            matches.push(m);
        }
    }
    matches
}

/// Robustly estimate the dominant displacement from matches
/// (component-wise median — a RANSAC-lite that tolerates outliers).
///
/// Returns `None` when there are no matches.
pub fn estimate_displacement(matches: &[Match]) -> Option<(f64, f64)> {
    if matches.is_empty() {
        return None;
    }
    let mut dxs: Vec<f64> = matches
        .iter()
        .map(|m| m.to.0 as f64 - m.from.0 as f64)
        .collect();
    let mut dys: Vec<f64> = matches
        .iter()
        .map(|m| m.to.1 as f64 - m.from.1 as f64)
        .collect();
    dxs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    dys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Some((dxs[dxs.len() / 2], dys[dys.len() / 2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corners::{detect_corners, CornerParams};
    use crate::image::SyntheticScene;

    fn pipeline_n(
        seed: u64,
        n: usize,
        dx: f64,
        dy: f64,
    ) -> (Vec<Match>, Option<(f64, f64)>) {
        let scene = SyntheticScene::new(seed, 200, 150, n);
        let a = scene.render(0.0, 0.0);
        let b = scene.render(dx, dy);
        let ca = detect_corners(&a, CornerParams::default());
        let cb = detect_corners(&b, CornerParams::default());
        let ms = match_corners(&a, &ca, &b, &cb, MatchParams::default());
        let est = estimate_displacement(&ms);
        (ms, est)
    }

    fn pipeline(seed: u64, dx: f64, dy: f64) -> (Vec<Match>, Option<(f64, f64)>) {
        pipeline_n(seed, 20, dx, dy)
    }

    #[test]
    fn recovers_known_displacement() {
        let (ms, est) = pipeline(1, 7.0, -4.0);
        assert!(ms.len() >= 8, "need enough matches, got {}", ms.len());
        let (dx, dy) = est.unwrap();
        assert!((dx - 7.0).abs() <= 1.5, "dx estimate {dx}");
        assert!((dy + 4.0).abs() <= 1.5, "dy estimate {dy}");
    }

    #[test]
    fn zero_displacement_matches_in_place() {
        let (_, est) = pipeline(2, 0.0, 0.0);
        let (dx, dy) = est.unwrap();
        assert!(dx.abs() <= 1.0 && dy.abs() <= 1.0, "({dx},{dy})");
    }

    #[test]
    fn identical_patch_has_maximal_ncc() {
        let scene = SyntheticScene::new(3, 64, 64, 1);
        let img = scene.render(0.0, 0.0);
        let (fx, fy) = scene.features[0];
        let s = ncc(&img, fx as usize, fy as usize, &img, fx as usize, fy as usize);
        assert!(s > 990, "self-NCC must be ~1000, got {s}");
    }

    #[test]
    fn matches_starve_outside_search_radius() {
        // All blobs look alike, so accidental cross-matches exist; but a
        // displacement far beyond the 24 px search radius must cut the
        // match count well below the aligned case. Use a sparse scene so
        // the starvation effect is not drowned by accidental
        // blob-to-neighbouring-blob matches (at 20 blobs on 200x150 the
        // mean spacing is only ~1.6x the search radius).
        let (aligned, _) = pipeline_n(4, 7, 0.0, 0.0);
        let (far, _) = pipeline_n(4, 7, 60.0, 0.0);
        assert!(
            far.len() * 2 < aligned.len(),
            "far {} vs aligned {}",
            far.len(),
            aligned.len()
        );
    }

    #[test]
    fn estimator_tolerates_outliers() {
        let mut ms: Vec<Match> = (0..9)
            .map(|i| Match {
                from: (10 + i, 10),
                to: (13 + i, 12),
                score: 900,
            })
            .collect();
        // Two wild outliers.
        ms.push(Match {
            from: (50, 50),
            to: (90, 10),
            score: 800,
        });
        ms.push(Match {
            from: (60, 60),
            to: (10, 90),
            score: 800,
        });
        let (dx, dy) = estimate_displacement(&ms).unwrap();
        assert_eq!(dx, 3.0);
        assert_eq!(dy, 2.0);
    }

    #[test]
    fn empty_matches_give_none() {
        assert!(estimate_displacement(&[]).is_none());
    }
}
