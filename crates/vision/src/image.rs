//! Synthetic grayscale images with known feature geometry.
//!
//! The reconstruction case study needs image *pairs related by a known
//! displacement* so the pipeline's output can be verified. A
//! [`SyntheticScene`] places feature blobs at seeded positions and renders
//! them onto a noisy gradient background; the second view renders the same
//! blobs shifted by the ground-truth displacement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Image {
    /// A black image of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Size of the pixel buffer in bytes (what the application allocates).
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Pixel at (x, y); zero outside the image.
    #[inline]
    pub fn at(&self, x: isize, y: isize) -> u8 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            0
        } else {
            self.data[y as usize * self.width + x as usize]
        }
    }

    /// Set pixel (x, y); ignored outside the image.
    #[inline]
    pub fn set(&mut self, x: isize, y: isize, v: u8) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.data[y as usize * self.width + x as usize] = v;
        }
    }

    /// Saturating add onto pixel (x, y).
    #[inline]
    pub fn add(&mut self, x: isize, y: isize, v: u8) {
        let cur = self.at(x, y);
        self.set(x, y, cur.saturating_add(v));
    }
}

/// A seeded arrangement of feature blobs.
#[derive(Debug, Clone)]
pub struct SyntheticScene {
    /// Blob centres in the reference view.
    pub features: Vec<(f64, f64)>,
    width: usize,
    height: usize,
    seed: u64,
}

impl SyntheticScene {
    /// Scatter `n` features over a `width` × `height` canvas.
    pub fn new(seed: u64, width: usize, height: usize, n: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let margin = 12.0;
        let features = (0..n)
            .map(|_| {
                (
                    rng.gen_range(margin..width as f64 - margin),
                    rng.gen_range(margin..height as f64 - margin),
                )
            })
            .collect();
        SyntheticScene {
            features,
            width,
            height,
            seed,
        }
    }

    /// Render the scene displaced by `(dx, dy)` pixels.
    ///
    /// The background is a gentle gradient with deterministic noise; each
    /// feature is a bright 5×5 blob with a dark rim, which produces a
    /// strong, localisable corner response.
    pub fn render(&self, dx: f64, dy: f64) -> Image {
        let mut img = Image::new(self.width, self.height);
        // Background: gradient + hash noise (deterministic).
        for y in 0..self.height {
            for x in 0..self.width {
                let g = ((x * 40 / self.width) + (y * 40 / self.height)) as u8 + 40;
                let mut h = (x as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((y as u64).wrapping_mul(0xBF58476D1CE4E5B9))
                    .wrapping_add(self.seed);
                h ^= h >> 31;
                let noise = (h % 13) as u8;
                img.set(x as isize, y as isize, g.saturating_add(noise));
            }
        }
        // Features: checkerboard-like blobs (strong Harris response).
        for &(fx, fy) in &self.features {
            let cx = (fx + dx).round() as isize;
            let cy = (fy + dy).round() as isize;
            for oy in -3isize..=3 {
                for ox in -3isize..=3 {
                    let d2 = ox * ox + oy * oy;
                    if d2 > 9 {
                        continue;
                    }
                    let v = if (ox >= 0) == (oy >= 0) { 255 } else { 10 };
                    img.set(cx + ox, cy + oy, v);
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_bounds_are_safe() {
        let mut img = Image::new(8, 8);
        assert_eq!(img.at(-1, 0), 0);
        assert_eq!(img.at(8, 0), 0);
        img.set(-5, -5, 200); // no panic
        img.set(3, 3, 200);
        assert_eq!(img.at(3, 3), 200);
        img.add(3, 3, 100);
        assert_eq!(img.at(3, 3), 255, "saturating add");
    }

    #[test]
    fn vga_image_exceeds_one_megabyte_at_depth() {
        // The paper: "each image of 640 x 480 uses over 1Mb" (multi-channel
        // / intermediate buffers); our byte buffer alone is 300 KiB, and the
        // pipeline allocates gradient planes on top (3 x u32 planes).
        let img = Image::new(640, 480);
        assert_eq!(img.byte_len(), 307_200);
        assert!(img.byte_len() + 3 * 4 * img.byte_len() > 1_000_000);
    }

    #[test]
    fn scene_rendering_is_deterministic() {
        let s = SyntheticScene::new(3, 64, 64, 10);
        assert_eq!(s.render(0.0, 0.0), s.render(0.0, 0.0));
    }

    #[test]
    fn displacement_moves_features() {
        let s = SyntheticScene::new(4, 64, 64, 1);
        let (fx, fy) = s.features[0];
        let a = s.render(0.0, 0.0);
        let b = s.render(5.0, 0.0);
        // The blob centre is bright in `a` at (fx, fy) and in `b` at +5.
        // Sample at the rounded centre — where `render` draws the blob —
        // not at the truncated coordinate, which can land one pixel into a
        // dark checkerboard quadrant.
        let (cx, cy) = (fx.round() as isize, fy.round() as isize);
        assert!(a.at(cx, cy) > 200);
        assert!(b.at(cx + 5, cy) > 200);
    }

    #[test]
    fn features_respect_margin() {
        let s = SyntheticScene::new(5, 100, 80, 50);
        for &(x, y) in &s.features {
            assert!((12.0..=88.0).contains(&x));
            assert!((12.0..=68.0).contains(&y));
        }
    }
}
