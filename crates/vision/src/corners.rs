//! Harris-style corner detection.
//!
//! The 3D-reconstruction sub-algorithm starts by finding "possible corners
//! to match", whose count "varies on each image" — the unpredictability
//! that forces dynamic memory. The detector computes image gradients, the
//! Harris structure tensor over a window, the corner response
//! `R = det(M) − k·tr(M)²`, and keeps local maxima above a threshold.

use crate::image::Image;

/// A detected corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// X coordinate in pixels.
    pub x: usize,
    /// Y coordinate in pixels.
    pub y: usize,
    /// Harris response at the corner (higher = stronger).
    pub strength: i64,
}

/// Size in bytes of a corner record on the modelled 32-bit target
/// (two coordinates + strength), used when the pipeline allocates corner
/// arrays through the manager under test.
pub const CORNER_RECORD_BYTES: usize = 16;

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerParams {
    /// Response threshold; raising it finds fewer, stronger corners.
    pub threshold: i64,
    /// Non-maximum-suppression radius in pixels.
    pub nms_radius: usize,
}

impl Default for CornerParams {
    fn default() -> Self {
        CornerParams {
            threshold: 500_000,
            nms_radius: 4,
        }
    }
}

/// Detect corners in `img`.
///
/// Returns corners sorted by descending strength.
pub fn detect_corners(img: &Image, params: CornerParams) -> Vec<Corner> {
    let w = img.width();
    let h = img.height();
    if w < 8 || h < 8 {
        return Vec::new();
    }
    // Gradient products, 3 planes of i32 — the "memory intensive"
    // intermediate state of the real pipeline.
    let mut ixx = vec![0i32; w * h];
    let mut iyy = vec![0i32; w * h];
    let mut ixy = vec![0i32; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let gx = img.at(x as isize + 1, y as isize) as i32
                - img.at(x as isize - 1, y as isize) as i32;
            let gy = img.at(x as isize, y as isize + 1) as i32
                - img.at(x as isize, y as isize - 1) as i32;
            ixx[y * w + x] = gx * gx;
            iyy[y * w + x] = gy * gy;
            ixy[y * w + x] = gx * gy;
        }
    }
    // Harris response over a 3x3 window; k = 1/16 in fixed point.
    let mut response = vec![0i64; w * h];
    for y in 2..h - 2 {
        for x in 2..w - 2 {
            let (mut sxx, mut syy, mut sxy) = (0i64, 0i64, 0i64);
            for oy in 0..3 {
                for ox in 0..3 {
                    let i = (y + oy - 1) * w + (x + ox - 1);
                    sxx += ixx[i] as i64;
                    syy += iyy[i] as i64;
                    sxy += ixy[i] as i64;
                }
            }
            let det = sxx * syy - sxy * sxy;
            let tr = sxx + syy;
            response[y * w + x] = det / 256 - (tr * tr) / 16 / 256;
        }
    }
    // Threshold + non-maximum suppression.
    let r = params.nms_radius as isize;
    let mut corners = Vec::new();
    for y in 2..h - 2 {
        for x in 2..w - 2 {
            let v = response[y * w + x];
            if v < params.threshold {
                continue;
            }
            let mut is_max = true;
            'nms: for oy in -r..=r {
                for ox in -r..=r {
                    let (nx, ny) = (x as isize + ox, y as isize + oy);
                    if nx < 0 || ny < 0 || nx as usize >= w || ny as usize >= h {
                        continue;
                    }
                    let nv = response[ny as usize * w + nx as usize];
                    if nv > v || (nv == v && (ny, nx) < (y as isize, x as isize)) {
                        is_max = false;
                        break 'nms;
                    }
                }
            }
            if is_max {
                corners.push(Corner { x, y, strength: v });
            }
        }
    }
    corners.sort_by(|a, b| b.strength.cmp(&a.strength).then(a.y.cmp(&b.y)).then(a.x.cmp(&b.x)));
    corners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::SyntheticScene;

    #[test]
    fn finds_the_seeded_features() {
        let scene = SyntheticScene::new(1, 160, 120, 12);
        let img = scene.render(0.0, 0.0);
        let corners = detect_corners(&img, CornerParams::default());
        assert!(
            corners.len() >= 10,
            "expected most of 12 blobs, got {}",
            corners.len()
        );
        // Every strong corner should be near a seeded feature.
        for c in corners.iter().take(12) {
            let near = scene.features.iter().any(|&(fx, fy)| {
                (c.x as f64 - fx).abs() <= 4.0 && (c.y as f64 - fy).abs() <= 4.0
            });
            assert!(near, "corner at ({}, {}) matches no feature", c.x, c.y);
        }
    }

    #[test]
    fn corner_count_varies_with_content() {
        // The unpredictability that motivates dynamic memory: different
        // images yield different corner counts.
        let counts: Vec<usize> = (0..5)
            .map(|seed| {
                let scene = SyntheticScene::new(seed, 160, 120, 8 + seed as usize * 7);
                detect_corners(&scene.render(0.0, 0.0), CornerParams::default()).len()
            })
            .collect();
        let distinct: std::collections::HashSet<usize> = counts.iter().copied().collect();
        assert!(distinct.len() >= 3, "counts should vary: {counts:?}");
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = Image::new(64, 64); // all black
        assert!(detect_corners(&img, CornerParams::default()).is_empty());
    }

    #[test]
    fn nms_keeps_one_corner_per_blob() {
        let scene = SyntheticScene::new(2, 120, 120, 1);
        let img = scene.render(0.0, 0.0);
        let corners = detect_corners(&img, CornerParams::default());
        // One blob => a handful of responses collapse to very few corners.
        assert!(
            (1..=3).contains(&corners.len()),
            "expected 1-3 corners, got {}",
            corners.len()
        );
    }

    #[test]
    fn results_sorted_by_strength() {
        let scene = SyntheticScene::new(3, 160, 120, 15);
        let corners = detect_corners(&scene.render(0.0, 0.0), CornerParams::default());
        assert!(corners.windows(2).all(|w| w[0].strength >= w[1].strength));
    }

    #[test]
    fn tiny_images_are_rejected_gracefully() {
        let img = Image::new(4, 4);
        assert!(detect_corners(&img, CornerParams::default()).is_empty());
    }
}
