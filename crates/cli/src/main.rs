//! The `dmm` command-line tool. See [`dmm_cli`] for the subcommands.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = dmm_cli::Invocation::parse(&args);
    match dmm_cli::run(&inv) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("dmm: {e}");
            std::process::exit(1);
        }
    }
}
