//! # dmm-cli
//!
//! Library backing the `dmm` command-line tool: each subcommand is a
//! function from parsed arguments to rendered text, so the whole surface
//! is unit-testable without spawning processes.
//!
//! Subcommands:
//!
//! - `space` — print the decision-tree taxonomy (Figure 1);
//! - `interdep` — print the interdependency rules and arrows (Figure 2);
//! - `profile <workload>` — profile a case study's DM behaviour;
//! - `explore <workload>` — run the methodology and show the decision log;
//! - `compare <workload>` — footprint table of every manager;
//! - `lint <target>` — static diagnostics over a preset configuration or
//!   a workload trace (`--json` for machines, `--explain CODE` for the
//!   catalogue entry, `--deny SEVERITY` for a gating exit code);
//! - `bounds <workload>` — admissible footprint floors
//!   ([`dmm_core::analyze::lower_bound_peak`]) of every preset on a
//!   workload trace, next to the replayed peaks they undercut;
//! - `record <workload> --out=FILE` — record a workload once and write the
//!   trace as a durable checksummed file (`--trace=FILE` feeds it back to
//!   `profile`/`explore`/`compare`; `--recover` salvages the valid prefix
//!   of a damaged file);
//! - `help` — usage.
//!
//! Workloads: `drr`, `recon`, `render` (add `--full` for paper scale,
//! `--seed=N` to change the input).
//!
//! Robustness flags: `--checkpoint=FILE` journals every completed replay
//! so a killed sweep resumes with `--resume` (bit-identical winner);
//! `--budget-steps=N`/`--budget-ms=N` bound each candidate replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Write as _;

use dmm_baselines::{KingsleyAllocator, LeaAllocator, ObstackAllocator, RegionAllocator};
use dmm_core::analyze::{self, Diagnostic, Severity};
use dmm_core::error::{Error, Result};
use dmm_core::manager::{Allocator, PolicyAllocator};
use dmm_core::methodology::{BudgetSpec, CheckpointJournal, ExplorationEngine, Methodology};
use dmm_core::profile::Profile;
use dmm_core::space::config::DmConfig;
use dmm_core::space::interdep;
use dmm_core::space::presets;
use dmm_core::space::trees::{Category, TreeId};
use dmm_core::trace::{replay_compiled, CompiledTrace, Trace};
use dmm_report::{Cell, Table};
use dmm_workloads::{DrrWorkload, ReconWorkload, RenderWorkload, Workload};
use serde::{Deserialize, Serialize};

/// Parsed command-line invocation.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// Subcommand name.
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--full` flag: paper-scale workloads.
    pub full: bool,
    /// `--seed=N` option.
    pub seed: u64,
    /// `--jobs=N` option: exploration worker threads (0 = all cores).
    pub jobs: usize,
    /// `--shards=N` option: split the trace into N shards and explore
    /// per shard, merging the designs (1 = whole-trace exploration).
    pub shards: usize,
    /// `--json` flag: machine-readable output (lint).
    pub json: bool,
    /// `--all-presets` flag: lint every shipped preset.
    pub all_presets: bool,
    /// `--explain CODE` / `--explain=CODE`: print one catalogue entry.
    pub explain: Option<String>,
    /// `--deny SEVERITY` / `--deny=SEVERITY`: fail (non-zero exit) when
    /// any lint finding reaches the severity.
    pub deny: Option<String>,
    /// `--trace=FILE`: operate on a durable trace file (written by
    /// `dmm record`) instead of recording the workload live.
    pub trace: Option<String>,
    /// `--out=FILE`: where `dmm record` writes the durable trace.
    pub out: Option<String>,
    /// `--checkpoint=FILE`: journal completed replays for crash resume.
    pub checkpoint: Option<String>,
    /// `--resume` flag: resume from the `--checkpoint` journal instead of
    /// truncating it.
    pub resume: bool,
    /// `--recover` flag: salvage the valid prefix of a damaged
    /// `--trace` file instead of failing on the first defect.
    pub recover: bool,
    /// `--budget-steps=N`: per-candidate replay budget in search steps
    /// (malformed values read as 0 and trip immediately — loud, not
    /// silently unlimited).
    pub budget_steps: Option<u64>,
    /// `--budget-ms=N`: per-candidate replay budget in wall-clock
    /// milliseconds (malformed values read as 0).
    pub budget_ms: Option<u64>,
    /// `--batch=N`: fused multi-candidate replay width for exhaustive
    /// sweeps — N candidates share one pass over the compiled event
    /// stream, and trace-conditioned projection collapses
    /// behaviorally-identical candidates onto one replay (1 = the serial
    /// kernel, no projection).
    pub batch: usize,
}

impl Invocation {
    /// Parse raw arguments (without the program name).
    pub fn parse(args: &[String]) -> Invocation {
        let mut command = String::from("help");
        let mut positional = Vec::new();
        let mut full = false;
        let mut seed = 0u64;
        let mut jobs = 0usize;
        let mut shards = 1usize;
        let mut json = false;
        let mut all_presets = false;
        let mut explain = None;
        let mut deny = None;
        let mut trace = None;
        let mut out = None;
        let mut checkpoint = None;
        let mut resume = false;
        let mut recover = false;
        let mut budget_steps = None;
        let mut budget_ms = None;
        let mut batch = 1usize;
        let mut expect_explain = false;
        let mut expect_deny = false;
        let mut seen_command = false;
        for a in args {
            if expect_explain {
                explain = Some(a.clone());
                expect_explain = false;
            } else if expect_deny {
                deny = Some(a.clone());
                expect_deny = false;
            } else if a == "--json" {
                json = true;
            } else if a == "--all-presets" {
                all_presets = true;
            } else if a == "--explain" {
                // The code follows as the next argument.
                expect_explain = true;
            } else if let Some(s) = a.strip_prefix("--explain=") {
                explain = Some(s.to_string());
            } else if a == "--deny" {
                // The severity follows as the next argument.
                expect_deny = true;
            } else if let Some(s) = a.strip_prefix("--deny=") {
                deny = Some(s.to_string());
            } else if a == "--full" {
                full = true;
            } else if a == "--resume" {
                resume = true;
            } else if a == "--recover" {
                recover = true;
            } else if let Some(s) = a.strip_prefix("--trace=") {
                trace = Some(s.to_string());
            } else if let Some(s) = a.strip_prefix("--out=") {
                out = Some(s.to_string());
            } else if let Some(s) = a.strip_prefix("--checkpoint=") {
                checkpoint = Some(s.to_string());
            } else if let Some(s) = a.strip_prefix("--budget-steps=") {
                // A malformed budget trips immediately (0) rather than
                // silently running unlimited.
                budget_steps = Some(s.parse().unwrap_or(0));
            } else if let Some(s) = a.strip_prefix("--budget-ms=") {
                budget_ms = Some(s.parse().unwrap_or(0));
            } else if let Some(s) = a.strip_prefix("--seed=") {
                seed = s.parse().unwrap_or(0);
            } else if let Some(s) = a.strip_prefix("--jobs=") {
                // A malformed value falls back to serial (1), not to all
                // cores (0) — the opposite extreme of a likely typo.
                jobs = s.parse().unwrap_or(1);
            } else if let Some(s) = a.strip_prefix("--shards=") {
                // Malformed or zero means unsharded.
                shards = s.parse().unwrap_or(1).max(1);
            } else if let Some(s) = a.strip_prefix("--batch=") {
                // Malformed or zero means the serial kernel.
                batch = s.parse().unwrap_or(1).max(1);
            } else if !seen_command {
                command = a.clone();
                seen_command = true;
            } else {
                positional.push(a.clone());
            }
        }
        // A dangling `--explain`/`--deny` with no value behaves like an
        // unknown value (the lint handler reports it), not a silent no-op.
        if expect_explain {
            explain = Some(String::new());
        }
        if expect_deny {
            deny = Some(String::new());
        }
        Invocation {
            command,
            positional,
            full,
            seed,
            jobs,
            shards,
            json,
            all_presets,
            explain,
            deny,
            trace,
            out,
            checkpoint,
            resume,
            recover,
            budget_steps,
            budget_ms,
            batch,
        }
    }
}

fn workload(inv: &Invocation) -> Result<Box<dyn Workload>> {
    let name = inv.positional.first().map(String::as_str).unwrap_or("drr");
    let w: Box<dyn Workload> = match (name, inv.full) {
        ("drr", false) => Box::new(DrrWorkload::quick(inv.seed)),
        ("drr", true) => Box::new(DrrWorkload::case_study(inv.seed)),
        ("recon", false) => Box::new(ReconWorkload::quick(inv.seed)),
        ("recon", true) => Box::new(ReconWorkload::case_study(inv.seed)),
        ("render", false) => Box::new(RenderWorkload::quick(inv.seed)),
        ("render", true) => Box::new(RenderWorkload::case_study(inv.seed)),
        (other, _) => {
            return Err(Error::InvalidConfig(format!(
                "unknown workload '{other}' (expected drr, recon or render)"
            )))
        }
    };
    Ok(w)
}

/// The trace a subcommand operates on: loaded from a durable
/// `--trace=FILE` (written by `dmm record`), or recorded live from the
/// named workload. Returns the display name, the trace, and — when
/// `--recover` salvaged a damaged file — a note describing the stopping
/// defect.
fn trace_source(inv: &Invocation) -> Result<(String, Trace, Option<String>)> {
    let Some(path) = &inv.trace else {
        let w = workload(inv)?;
        return Ok((w.name().to_string(), w.record()?, None));
    };
    let p = std::path::Path::new(path);
    if inv.recover {
        let rec = dmm_core::trace::recover_trace(p)?;
        let note = rec.truncated.as_ref().map(|e| {
            format!(
                "recovered valid prefix of {path}: {} frame(s), {} event(s); stopped at: {e}",
                rec.frames,
                rec.trace.len()
            )
        });
        Ok((path.clone(), rec.trace, note))
    } else {
        Ok((path.clone(), dmm_core::trace::read_trace(p)?, None))
    }
}

/// The exploration engine a subcommand evaluates through, with the
/// robustness flags applied: per-candidate budgets (quarantine mode comes
/// with them, so budget trips in sweeps skip the candidate instead of
/// aborting the sweep) and the checkpoint journal.
fn engine_for(inv: &Invocation) -> Result<ExplorationEngine> {
    if inv.resume && inv.checkpoint.is_none() {
        return Err(Error::InvalidConfig(
            "--resume needs --checkpoint=FILE (the journal to resume from)".into(),
        ));
    }
    let mut engine = ExplorationEngine::new(inv.jobs);
    if inv.batch > 1 {
        engine.set_batch(inv.batch);
        engine.set_projection(true);
    }
    if inv.budget_steps.is_some() || inv.budget_ms.is_some() {
        engine.set_budget(BudgetSpec {
            max_steps: inv.budget_steps,
            max_millis: inv.budget_ms,
        });
        engine.set_quarantine(true);
    }
    if let Some(path) = &inv.checkpoint {
        let p = std::path::Path::new(path);
        let journal = if inv.resume {
            CheckpointJournal::resume(p)?
        } else {
            CheckpointJournal::create(p)?
        };
        engine.set_journal(journal);
    }
    Ok(engine)
}

/// Pre-run snapshot of the engine's journal: path, replays already
/// journalled, damaged bytes dropped on resume. Take it **before**
/// exploring — afterwards the journal also holds this run's replays.
fn journal_snapshot(engine: &ExplorationEngine) -> Option<(String, usize, usize)> {
    engine
        .journal()
        .map(|j| (j.path().display().to_string(), j.entries(), j.recovered_bytes()))
}

/// The `workload:` / checkpoint header lines shared by the exploration
/// surfaces.
fn write_source_header(
    out: &mut String,
    name: &str,
    note: &Option<String>,
    journal: &Option<(String, usize, usize)>,
) {
    let _ = writeln!(out, "workload: {name}");
    if let Some(n) = note {
        let _ = writeln!(out, "note: {n}");
    }
    if let Some((path, entries, recovered)) = journal {
        let dropped = if *recovered > 0 {
            format!(", {recovered} damaged byte(s) dropped")
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "checkpoint: {path} ({entries} replay(s) already journalled{dropped})"
        );
    }
}

/// `dmm record <workload> --out=FILE`: record the workload once and write
/// its trace as a durable, checksummed file for `--trace=FILE` reuse.
///
/// # Errors
///
/// [`Error::InvalidConfig`] without `--out`; workload and I/O failures
/// propagate ([`Error::TraceStore`] `TR013` for the write).
pub fn record_text(inv: &Invocation) -> Result<String> {
    let Some(out_path) = &inv.out else {
        return Err(Error::InvalidConfig(
            "record needs --out=FILE for the durable trace".into(),
        ));
    };
    let w = workload(inv)?;
    let trace = w.record()?;
    let path = std::path::Path::new(out_path);
    dmm_core::trace::write_trace(path, &trace)?;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "workload: {}", w.name());
    let _ = writeln!(
        out,
        "recorded {} event(s) ({} allocs) to {} ({bytes} B, checksummed frames of {} events)",
        trace.len(),
        trace.alloc_count(),
        path.display(),
        dmm_core::trace::store::FRAME_EVENTS
    );
    let _ = writeln!(
        out,
        "(replay it with --trace={}; --recover salvages the valid prefix of a damaged file)",
        path.display()
    );
    Ok(out)
}

/// Usage text.
pub fn help_text() -> String {
    "dmm — custom dynamic-memory-manager design methodology (DATE 2004)\n\
     \n\
     USAGE: dmm <command> [workload] [--full] [--seed=N] [--jobs=N] [--shards=N]\n\
     \n\
     COMMANDS:\n\
       space              print the DM-management decision trees (Figure 1)\n\
       interdep           print the interdependency rules/arrows (Figure 2)\n\
       profile <wl>       profile a workload's DM behaviour\n\
       explore <wl>       design a custom manager for a workload\n\
       compare <wl>       footprint of every manager on a workload\n\
       phases <wl>        detect logical phases from DM behaviour alone\n\
       lint <target>      static diagnostics (DM0xx/TR0xx/BD0xx) over a preset\n\
                          configuration or a workload trace; targets are a\n\
                          preset (drr_paper|kingsley_like|lea_like|neutral),\n\
                          a workload, or --all-presets; --json for machines,\n\
                          --explain CODE for one catalogue entry,\n\
                          --deny SEVERITY (note|warn|error) for a gating\n\
                          non-zero exit when any finding reaches it\n\
       bounds <wl>        admissible footprint floors of every preset on a\n\
                          workload trace, next to the replayed peaks\n\
       record <wl>        record the workload once and write its trace as a\n\
                          durable checksummed file (--out=FILE required)\n\
       help               this text\n\
     \n\
     WORKLOADS: drr | recon | render  (test scale; add --full for paper scale)\n\
     \n\
     --jobs=N fans exploration replays out over N threads (0 = all cores;\n\
     results are bit-identical to a serial run)\n\
     --shards=N splits the trace into N self-contained shards, explores\n\
     each independently and merges the designs by score-weighted vote\n\
     (phase-aligned when the trace has phases; memory is bounded by the\n\
     largest shard instead of the whole trace)\n\
     --trace=FILE replays a durable trace (from `dmm record`) instead of\n\
     recording the workload live; --recover salvages the valid prefix of\n\
     a damaged file (defects are structured TR01x errors otherwise)\n\
     --checkpoint=FILE journals every completed replay; after a crash,\n\
     --resume skips the journalled candidates (bit-identical winner)\n\
     --budget-steps=N / --budget-ms=N bound each candidate replay; a\n\
     tripped budget aborts that candidate, not the sweep\n\
     --batch=N fuses N candidates into one pass over the compiled event\n\
     stream and projects behaviourally-identical candidates onto one\n\
     replay (bit-identical winner; 1 = the serial kernel)\n"
        .to_string()
}

/// `dmm space`.
pub fn space_text() -> String {
    let mut out = String::new();
    for category in Category::ALL {
        let _ = writeln!(out, "{category}");
        for tree in TreeId::ALL.iter().filter(|t| t.category() == category) {
            let _ = writeln!(out, "  {tree}");
            for leaf in tree.leaves() {
                let _ = writeln!(out, "      - {leaf}");
            }
        }
    }
    out
}

/// `dmm interdep`. Regenerated from the [`interdep::RULES`] and
/// [`interdep::ARROWS`] tables — the same tables the lint engine reads —
/// so each line carries the diagnostic code it fires under.
pub fn interdep_text() -> String {
    let mut out = String::from("hard rules (full arrows):\n");
    for r in interdep::RULES {
        let _ = writeln!(out, "  {} [{}]: {}", r.id, r.code, r.description);
    }
    out.push_str("soft arrows (linked purposes):\n");
    for a in interdep::ARROWS
        .iter()
        .filter(|a| a.kind == interdep::ArrowKind::Soft)
    {
        let code = analyze::soft_arrow_code(a.from, a.to)
            .map(|c| format!(" [{c}]"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  {} --> {}{code}: {}",
            a.from.code(),
            a.to.code(),
            a.why
        );
    }
    out.push_str("(dmm lint --explain CODE prints the catalogue entry)\n");
    out
}

/// One linted target: the element shape of `dmm lint --json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LintReport {
    /// What was linted: a preset key or a workload name.
    pub target: String,
    /// `"config"` or `"trace"`.
    pub kind: String,
    /// Diagnostics in emission order (stable codes — see the catalogue).
    pub diagnostics: Vec<Diagnostic>,
}

/// A preset constructor paired with its stable CLI key.
type PresetEntry = (&'static str, fn() -> DmConfig);

/// The shipped presets by stable key, in lint order.
const PRESET_KEYS: &[PresetEntry] = &[
    ("drr_paper", presets::drr_paper),
    ("kingsley_like", presets::kingsley_like),
    ("lea_like", presets::lea_like),
    ("neutral", presets::neutral),
];

fn config_report(target: &str, cfg: &DmConfig) -> LintReport {
    LintReport {
        target: target.to_string(),
        kind: "config".into(),
        diagnostics: analyze::lint_config(cfg),
    }
}

fn lint_reports(inv: &Invocation) -> Result<Vec<LintReport>> {
    if inv.all_presets {
        return Ok(PRESET_KEYS
            .iter()
            .map(|(k, f)| config_report(k, &f()))
            .collect());
    }
    let Some(name) = inv.positional.first().map(String::as_str) else {
        return Err(Error::InvalidConfig(
            "lint needs a target: a preset (drr_paper|kingsley_like|lea_like|neutral), \
             a workload (drr|recon|render), or --all-presets"
                .into(),
        ));
    };
    if let Some((k, f)) = PRESET_KEYS.iter().find(|(k, _)| *k == name) {
        return Ok(vec![config_report(k, &f())]);
    }
    match name {
        "drr" | "recon" | "render" => {
            let w = workload(inv)?;
            let trace = w.record()?;
            Ok(vec![LintReport {
                target: w.name().to_string(),
                kind: "trace".into(),
                diagnostics: analyze::lint_trace(&trace),
            }])
        }
        other => Err(Error::InvalidConfig(format!(
            "unknown lint target '{other}' (expected a preset drr_paper|kingsley_like|\
             lea_like|neutral, a workload drr|recon|render, or --all-presets)"
        ))),
    }
}

/// Parse a `--deny` severity name (`note`, `warn`, `error`).
fn parse_severity(name: &str) -> Result<Severity> {
    match name {
        "note" => Ok(Severity::Note),
        "warn" | "warning" => Ok(Severity::Warn),
        "error" => Ok(Severity::Error),
        other => Err(Error::InvalidConfig(format!(
            "unknown severity '{other}' for --deny (expected note, warn or error)"
        ))),
    }
}

/// `dmm lint <target>`: static diagnostics over a preset configuration or
/// a recorded workload trace. `--json` emits machine-readable reports,
/// `--explain CODE` prints one catalogue entry instead of linting, and
/// `--deny SEVERITY` turns any finding at or above the severity into an
/// error (non-zero process exit) carrying the full report.
///
/// # Errors
///
/// Unknown targets, unknown `--explain` codes and unknown `--deny`
/// severities are [`Error::InvalidConfig`]; a tripped `--deny` threshold
/// is too; workload recording failures propagate.
pub fn lint_text(inv: &Invocation) -> Result<String> {
    if let Some(code) = &inv.explain {
        return match analyze::explain(code) {
            Some(entry) => Ok(entry.explain_text()),
            None => Err(Error::InvalidConfig(format!(
                "unknown diagnostic code '{code}' (codes are DM0xx for configurations, \
                 TR0xx for traces, BD0xx for bounds; see the README catalogue)"
            ))),
        };
    }
    // Validate the threshold before doing any work, so a typo'd severity
    // fails fast instead of silently gating nothing.
    let deny = inv.deny.as_deref().map(parse_severity).transpose()?;
    let reports = lint_reports(inv)?;
    let out = if inv.json {
        let mut s = serde_json::to_string(&reports)
            .map_err(|e| Error::InvalidConfig(format!("lint serialization failed: {e}")))?;
        s.push('\n');
        s
    } else {
        let mut out = String::new();
        let (mut errors, mut warns, mut notes) = (0usize, 0usize, 0usize);
        for r in &reports {
            if r.diagnostics.is_empty() {
                let _ = writeln!(out, "{} ({}): clean", r.target, r.kind);
                continue;
            }
            let _ = writeln!(out, "{} ({}):", r.target, r.kind);
            for d in &r.diagnostics {
                match d.severity {
                    Severity::Error => errors += 1,
                    Severity::Warn => warns += 1,
                    Severity::Note => notes += 1,
                }
                let _ = writeln!(out, "  {}", d.render());
            }
        }
        let _ = writeln!(out, "{errors} error(s), {warns} warning(s), {notes} note(s)");
        out
    };
    if let Some(threshold) = deny {
        let offenders: Vec<&Diagnostic> = reports
            .iter()
            .flat_map(|r| &r.diagnostics)
            .filter(|d| d.severity >= threshold)
            .collect();
        if !offenders.is_empty() {
            return Err(Error::InvalidConfig(format!(
                "lint: {} finding(s) at or above --deny {threshold}:\n{}",
                offenders.len(),
                offenders
                    .iter()
                    .map(|d| format!("  {}", d.render()))
                    .collect::<Vec<_>>()
                    .join("\n")
            )));
        }
    }
    Ok(out)
}

/// `dmm bounds <workload>`: admissible footprint floors of every shipped
/// preset on the workload's trace, next to the peaks their replays
/// actually reach. The floor is [`analyze::lower_bound_peak`] — computed
/// without replaying — so the table shows both how configurations rank
/// before any simulation and how tight the static analysis is
/// (`floor/peak`, 100% = exact). BD0xx advisories per configuration
/// follow the table; `dmm lint --explain BD001` documents the contract.
///
/// # Errors
///
/// Propagates workload recording and replay failures.
pub fn bounds_text(inv: &Invocation) -> Result<String> {
    let w = workload(inv)?;
    let trace = w.record()?;
    let facts = analyze::TraceFacts::of(&trace);
    let mut out = String::new();
    let _ = writeln!(out, "workload: {}", w.name());
    let _ = writeln!(
        out,
        "trace: {} events, live-set peak {} B in {} blocks",
        trace.len(),
        facts.peak.bytes,
        facts.peak.blocks
    );
    let mut table = Table::new(
        format!("admissible footprint floors on {}", w.name()),
        vec![
            "configuration".into(),
            "lower bound".into(),
            "dominant term".into(),
            "replayed peak".into(),
            "floor/peak".into(),
        ],
    );
    let compiled = CompiledTrace::compile(&trace);
    let mut advisories = String::new();
    for (key, make) in PRESET_KEYS {
        let cfg = make();
        let breakdown = analyze::bound_breakdown(&facts, &cfg);
        let bound = breakdown.total();
        let mut mgr = PolicyAllocator::new(cfg.clone())?;
        let fs = replay_compiled(&compiled, &mut mgr)?;
        debug_assert!(bound <= fs.peak_footprint, "inadmissible bound for {key}");
        table.push_row(
            (*key).to_string(),
            vec![
                Cell::Bytes(bound),
                Cell::Text(breakdown.dominant().to_string()),
                Cell::Bytes(fs.peak_footprint),
                Cell::Percent(100.0 * bound as f64 / fs.peak_footprint.max(1) as f64),
            ],
        );
        for d in analyze::lint_bounds(&facts, &cfg) {
            let _ = writeln!(advisories, "  [{key}] {}", d.render());
        }
    }
    out.push_str(&table.to_ascii());
    if !advisories.is_empty() {
        let _ = writeln!(out, "advisories:");
        out.push_str(&advisories);
    }
    let _ = writeln!(
        out,
        "(floors are admissible: bound <= replayed peak for every configuration; \
         the exploration engine uses them to skip provably-losing candidates)"
    );
    Ok(out)
}

/// `dmm profile <workload>`.
///
/// # Errors
///
/// Propagates workload failures.
pub fn profile_text(inv: &Invocation) -> Result<String> {
    let (name, trace, note) = trace_source(inv)?;
    let p = Profile::of(&trace);
    let mut out = String::new();
    let _ = writeln!(out, "workload: {name}");
    if let Some(n) = &note {
        let _ = writeln!(out, "note: {n}");
    }
    let _ = writeln!(
        out,
        "events: {} ({} allocs, {} frees)",
        trace.len(),
        p.allocs,
        p.frees
    );
    let _ = writeln!(out, "distinct sizes: {}", p.histogram.distinct());
    let _ = writeln!(out, "mean size: {:.1} B", p.histogram.mean());
    let _ = writeln!(
        out,
        "size variability (cv): {:.2}",
        p.histogram.coefficient_of_variation()
    );
    let _ = writeln!(
        out,
        "peak live: {} B in {} blocks",
        p.peak_live_bytes, p.peak_live_count
    );
    let _ = writeln!(out, "mean lifetime: {:.1} events", p.lifetimes.mean);
    for ph in &p.phases {
        let _ = writeln!(
            out,
            "phase {}: {} allocs, peak live {} B, stack-like: {}",
            ph.phase, ph.allocs, ph.peak_live, ph.stack_like
        );
    }
    let _ = writeln!(out, "top sizes (size x count):");
    for (s, c) in p.histogram.top_k(8) {
        let _ = writeln!(out, "  {s:>8} B x {c}");
    }
    Ok(out)
}

/// `dmm explore <workload>`.
///
/// # Errors
///
/// Propagates workload/exploration failures.
pub fn explore_text(inv: &Invocation) -> Result<String> {
    if inv.shards > 1 {
        return explore_sharded_text(inv);
    }
    let (name, trace, note) = trace_source(inv)?;
    let engine = engine_for(inv)?;
    let journal = journal_snapshot(&engine);
    let outcome = Methodology::new()
        .with_jobs(inv.jobs)
        .explore_with_engine(&trace, &engine)?;
    let mut out = String::new();
    write_source_header(&mut out, &name, &note, &journal);
    // Same counter line every exploration surface prints: the
    // `EngineCounters` Display. Greedy exploration never prunes or
    // quarantines, so the resilience counters are zero by construction.
    let counters = dmm_core::methodology::EngineCounters {
        evaluations: outcome.evaluations,
        replays: outcome.replays,
        cache_hits: outcome.cache_hits,
        ..Default::default()
    };
    let _ = writeln!(out, "exploration: {counters}");
    let _ = writeln!(out, "decision log (traversal order of Section 4.2):");
    for d in &outcome.decisions {
        let _ = writeln!(out, "  {} -> {}", d.tree.code(), d.chosen);
        for c in &d.candidates {
            let marker = if c.leaf == d.chosen { "*" } else { " " };
            let _ = writeln!(
                out,
                "     {marker} {:<28} peak {:>10} B, {:>8} steps",
                c.leaf.to_string(),
                c.peak_footprint,
                c.search_steps
            );
        }
    }
    // The designed config is the best completion found anywhere during the
    // search (incumbent + probe portfolio), which can differ from the
    // greedy per-tree choices starred above — say so to avoid reading the
    // two as contradictory.
    let _ = writeln!(
        out,
        "\nfinal configuration (best design evaluated; may differ from the \
         starred greedy path): {}",
        outcome.config.summary()
    );
    let _ = writeln!(
        out,
        "config fingerprint: {:016x}",
        outcome.config.fingerprint()
    );
    let _ = writeln!(
        out,
        "peak footprint: {} B (application peak live: {} B)",
        outcome.footprint.peak_footprint,
        trace.peak_live_requested()
    );
    Ok(out)
}

/// `dmm explore <workload> --shards=N`: sharded exploration with the
/// merge-decision log.
///
/// # Errors
///
/// Propagates workload/exploration failures.
fn explore_sharded_text(inv: &Invocation) -> Result<String> {
    let (name, trace, note) = trace_source(inv)?;
    let engine = engine_for(inv)?;
    let journal = journal_snapshot(&engine);
    let outcome = Methodology::new()
        .with_jobs(inv.jobs)
        .explore_sharded_with_engine(&trace, inv.shards, &engine)?;
    let mut out = String::new();
    write_source_header(&mut out, &name, &note, &journal);
    let _ = writeln!(
        out,
        "shards: {} (requested {}; phase-aligned shards win over the flag)",
        outcome.shard_count, inv.shards
    );
    for s in &outcome.per_shard {
        let label = match s.phase {
            Some(p) => format!("shard {} (phase {p})", s.index),
            None => format!("shard {}", s.index),
        };
        let _ = writeln!(
            out,
            "  {label}: {} events, peak {} B, vote weight {} B",
            s.events, s.outcome.footprint.peak_footprint, s.weight as usize
        );
    }
    let _ = writeln!(out, "exploration: {}", outcome.counters());
    let _ = writeln!(out, "merge log (score-weighted vote per tree):");
    for d in &outcome.merges {
        let votes = d
            .votes
            .iter()
            .map(|v| format!("{} ({} shards, {} B)", v.leaf, v.shards, v.weight as usize))
            .collect::<Vec<_>>()
            .join("; ");
        let mark = if d.unanimous { "=" } else { "~" };
        let _ = writeln!(out, "  {} {mark}> {}   [{votes}]", d.tree.code(), d.chosen);
    }
    let _ = writeln!(out, "\nmerged configuration: {}", outcome.config.summary());
    let _ = writeln!(
        out,
        "composed peak footprint: {} B (application peak live: {} B)",
        outcome.footprint.peak_footprint,
        trace.peak_live_requested()
    );
    // This in-memory path holds the recorded trace and its shards at
    // once; only the streaming API (`explore_shard_stream`) realises the
    // per-shard bound — report the figure as that path's bound, not as
    // this invocation's resident memory.
    let _ = writeln!(
        out,
        "largest shard: {} B of {} B total trace (streaming exploration is \
         bounded by the largest shard; carried across boundaries: {} B)",
        outcome.peak_resident_trace_bytes,
        trace.resident_bytes(),
        outcome.max_carried_bytes
    );
    Ok(out)
}

/// `dmm compare <workload>`.
///
/// # Errors
///
/// Propagates workload/exploration failures.
pub fn compare_text(inv: &Invocation) -> Result<String> {
    let (name, trace, _note) = trace_source(inv)?;
    let engine = engine_for(inv)?;
    let profile = Profile::of(&trace);
    let methodology = Methodology::new()
        .with_name("our DM manager")
        .with_jobs(inv.jobs);
    // With --shards=N the custom design comes from sharded exploration —
    // same comparison table, scalable design path.
    let custom_config = if inv.shards > 1 {
        let mut sharded = methodology.explore_sharded_with_engine(&trace, inv.shards, &engine)?;
        sharded.config.name = "our DM manager (sharded)".into();
        sharded.config
    } else {
        methodology.explore_with_engine(&trace, &engine)?.config
    };
    let mut managers: Vec<Box<dyn Allocator>> = vec![
        Box::new(KingsleyAllocator::with_initial_region(if inv.full {
            2 * 1024 * 1024
        } else {
            64 * 1024
        })),
        Box::new(LeaAllocator::new()),
        Box::new(RegionAllocator::with_profile(&profile)),
        Box::new(ObstackAllocator::new()),
        Box::new(PolicyAllocator::new(custom_config)?),
    ];
    let mut table = Table::new(
        format!("footprint on {name}"),
        vec![
            "manager".into(),
            "peak footprint".into(),
            "ours improves by".into(),
        ],
    );
    // One compilation serves every comparator's replay: frees are already
    // slot-resolved, so each row pays no per-event id hashing.
    let compiled = CompiledTrace::compile(&trace);
    let mut results = Vec::new();
    for m in managers.iter_mut() {
        let fs = replay_compiled(&compiled, m.as_mut())?;
        results.push((fs.manager.to_string(), fs.peak_footprint));
    }
    let ours = results.last().expect("non-empty").1;
    for (name, peak) in &results {
        table.push_row(
            name.clone(),
            vec![
                Cell::Bytes(*peak),
                Cell::Percent(dmm_core::metrics::percent_improvement(ours, *peak)),
            ],
        );
    }
    Ok(table.to_ascii())
}

/// `dmm phases <workload>` — detect logical phases from the allocation
/// behaviour alone and compare with the application's own markers.
///
/// # Errors
///
/// Propagates workload failures.
pub fn phases_text(inv: &Invocation) -> Result<String> {
    use dmm_core::profile::{annotate_phases, detect_phase_boundaries};
    use dmm_core::trace::{Trace, TraceEvent};

    let w = workload(inv)?;
    let trace = w.record()?;
    let announced = trace.phases();
    // Strip the application's markers, then detect blind.
    let stripped = Trace::from_events(
        trace
            .events()
            .iter()
            .copied()
            .filter(|e| !matches!(e, TraceEvent::Phase { .. }))
            .collect(),
    )
    .expect("stripping markers preserves validity");
    let bounds = detect_phase_boundaries(&stripped, 32, 0.8);
    let annotated = annotate_phases(&stripped, 32, 0.8);

    let mut out = String::new();
    let _ = writeln!(out, "workload: {}", w.name());
    let _ = writeln!(out, "announced phases: {announced:?}");
    let _ = writeln!(
        out,
        "detected boundaries (event indices): {bounds:?}"
    );
    let _ = writeln!(out, "detected phases: {:?}", annotated.phases());
    for (phase, sub) in annotated.split_phases() {
        let p = Profile::of(&sub);
        let _ = writeln!(
            out,
            "  phase {phase}: {} allocs, mean size {:.0} B, stack-like: {}",
            p.allocs,
            p.histogram.mean(),
            p.phases.first().map(|x| x.stack_like).unwrap_or(false)
        );
    }
    // --shards=N: show how the detected structure shards (phase-aligned
    // when the detector found phases, lifetime-closed windows otherwise).
    if inv.shards > 1 {
        let shards = dmm_core::trace::shard_trace(&annotated, inv.shards);
        let _ = writeln!(out, "shard plan ({} shards):", shards.len());
        for s in &shards {
            let label = match s.phase {
                Some(p) => format!("phase {p}"),
                None => "window".to_string(),
            };
            let _ = writeln!(
                out,
                "  shard {} ({label}): {} events, {} resident B, boundary carry {} B{}",
                s.index,
                s.trace.len(),
                s.resident_bytes(),
                s.boundary.carried_bytes,
                if s.boundary.is_closed() { " (closed)" } else { "" }
            );
        }
    }
    Ok(out)
}

/// Dispatch an invocation to its subcommand.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for unknown commands or workloads, and
/// propagates harness failures.
pub fn run(inv: &Invocation) -> Result<String> {
    match inv.command.as_str() {
        "space" => Ok(space_text()),
        "interdep" => Ok(interdep_text()),
        "profile" => profile_text(inv),
        "explore" => explore_text(inv),
        "compare" => compare_text(inv),
        "phases" => phases_text(inv),
        "lint" => lint_text(inv),
        "bounds" => bounds_text(inv),
        "record" => record_text(inv),
        "help" | "--help" | "-h" => Ok(help_text()),
        other => Err(Error::InvalidConfig(format!(
            "unknown command '{other}' — try 'dmm help'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(parts: &[&str]) -> Invocation {
        Invocation::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn help_lists_all_commands() {
        let h = help_text();
        for cmd in ["space", "interdep", "profile", "explore", "compare"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn parse_flags_and_positionals() {
        let i = inv(&["explore", "recon", "--seed=7", "--full", "--jobs=4", "--shards=8"]);
        assert_eq!(i.command, "explore");
        assert_eq!(i.positional, vec!["recon"]);
        assert_eq!(i.seed, 7);
        assert!(i.full);
        assert_eq!(i.jobs, 4);
        assert_eq!(i.shards, 8);
        assert_eq!(inv(&["explore"]).jobs, 0, "jobs defaults to all cores");
        assert_eq!(inv(&["explore"]).shards, 1, "shards defaults to unsharded");
        assert_eq!(
            inv(&["explore", "--jobs=oops"]).jobs,
            1,
            "malformed jobs falls back to serial, not all cores"
        );
        assert_eq!(
            inv(&["explore", "--shards=oops"]).shards,
            1,
            "malformed shard count falls back to unsharded"
        );
        assert_eq!(inv(&["explore", "--shards=0"]).shards, 1);
        assert_eq!(inv(&["explore"]).batch, 1, "batch defaults to serial");
        assert_eq!(inv(&["explore", "--batch=16"]).batch, 16);
        assert_eq!(
            inv(&["explore", "--batch=oops"]).batch,
            1,
            "malformed batch width falls back to the serial kernel"
        );
        assert_eq!(inv(&["explore", "--batch=0"]).batch, 1);
    }

    #[test]
    fn explore_reports_cache_counters_and_jobs_agree() {
        let serial = explore_text(&inv(&["explore", "drr", "--jobs=1"])).unwrap();
        let parallel = explore_text(&inv(&["explore", "drr", "--jobs=4"])).unwrap();
        assert!(serial.contains("cache hits"), "{serial}");
        // Same decisions and final configuration line, whatever the
        // fan-out. (Counters may split differently between replays and
        // cache hits; compare everything below the counter line.)
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("decision log"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&serial), tail(&parallel));
    }

    #[test]
    fn explore_batched_projection_agrees_with_serial() {
        // --batch=N turns on the fused kernel and the projection tier;
        // the designed manager must not change.
        let serial = explore_text(&inv(&["explore", "drr", "--jobs=1"])).unwrap();
        let batched = explore_text(&inv(&["explore", "drr", "--jobs=1", "--batch=8"])).unwrap();
        let tail = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("decision log"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&serial), tail(&batched));
    }

    #[test]
    fn empty_args_default_to_help() {
        let i = inv(&[]);
        assert_eq!(i.command, "help");
        assert!(run(&i).unwrap().contains("USAGE"));
    }

    #[test]
    fn space_shows_all_trees() {
        let s = space_text();
        for tree in TreeId::ALL {
            assert!(s.contains(tree.code()));
        }
    }

    #[test]
    fn interdep_shows_rules() {
        let s = interdep_text();
        assert!(s.contains("R1a"));
        assert!(s.contains("-->"));
        // Every hard rule line carries its diagnostic code, straight from
        // the same table the lint engine reads.
        for r in interdep::RULES {
            assert!(s.contains(r.code), "missing {} in interdep text", r.code);
        }
        assert!(s.contains("[DM020]"), "soft arrows carry advisory codes:\n{s}");
    }

    #[test]
    fn parse_lint_flags() {
        let i = inv(&["lint", "--all-presets", "--json"]);
        assert_eq!(i.command, "lint");
        assert!(i.json && i.all_presets);
        assert_eq!(inv(&["lint", "--explain", "DM007"]).explain.as_deref(), Some("DM007"));
        assert_eq!(inv(&["lint", "--explain=TR001"]).explain.as_deref(), Some("TR001"));
        assert_eq!(
            inv(&["lint", "--explain"]).explain.as_deref(),
            Some(""),
            "dangling --explain reads as an (unknown) empty code"
        );
    }

    #[test]
    fn parse_deny_flag_both_spellings() {
        assert_eq!(inv(&["lint", "--deny", "error"]).deny.as_deref(), Some("error"));
        assert_eq!(inv(&["lint", "--deny=warn"]).deny.as_deref(), Some("warn"));
        assert_eq!(
            inv(&["lint", "--deny"]).deny.as_deref(),
            Some(""),
            "dangling --deny reads as an (unknown) empty severity"
        );
        assert_eq!(inv(&["lint", "drr"]).deny, None);
    }

    #[test]
    fn deny_gates_on_severity_and_rejects_unknown_thresholds() {
        // Shipped presets carry warnings but no errors: error passes, note
        // trips (every preset has at least an advisory or warning).
        assert!(lint_text(&inv(&["lint", "--all-presets", "--deny", "error"])).is_ok());
        let err = lint_text(&inv(&["lint", "--all-presets", "--deny", "note"]))
            .expect_err("notes present, note threshold must trip");
        let msg = err.to_string();
        assert!(msg.contains("--deny note"), "{msg}");
        assert!(msg.contains('['), "offending findings are listed: {msg}");
        // The clean drr trace passes even the strictest gate.
        assert!(lint_text(&inv(&["lint", "drr", "--deny", "note"])).is_ok());
        // Unknown severity fails fast, before linting anything.
        assert!(lint_text(&inv(&["lint", "drr", "--deny", "fatal"])).is_err());
    }

    #[test]
    fn lint_all_presets_json_round_trips_with_stable_codes() {
        let out = lint_text(&inv(&["lint", "--all-presets", "--json"])).unwrap();
        let reports: Vec<LintReport> = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert_eq!(r.kind, "config");
            for d in &r.diagnostics {
                assert!(
                    d.code.starts_with("DM") && d.code.len() == 5,
                    "unstable code {:?}",
                    d.code
                );
                assert_ne!(
                    d.severity,
                    Severity::Error,
                    "shipped preset {} carries an error: {}",
                    r.target,
                    d.render()
                );
            }
        }
        // Round trip: parse -> serialize is byte-identical.
        let again = serde_json::to_string(&reports).unwrap();
        assert_eq!(out.trim(), again);
    }

    #[test]
    fn lint_workload_trace_is_clean() {
        let out = lint_text(&inv(&["lint", "drr"])).unwrap();
        assert!(out.contains("(trace): clean"), "{out}");
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn lint_explain_prints_the_catalogue_entry() {
        let out = lint_text(&inv(&["lint", "--explain", "DM007"])).unwrap();
        assert!(out.starts_with("DM007"), "{out}");
        assert!(out.contains("fix:"), "{out}");
        assert!(lint_text(&inv(&["lint", "--explain", "DM999"])).is_err());
    }

    #[test]
    fn lint_needs_a_target_and_rejects_unknown_ones() {
        assert!(lint_text(&inv(&["lint"])).is_err());
        assert!(lint_text(&inv(&["lint", "nosuch"])).is_err());
    }

    #[test]
    fn bounds_table_lists_every_preset_with_admissible_floors() {
        let out = bounds_text(&inv(&["bounds", "drr"])).unwrap();
        for key in ["drr_paper", "kingsley_like", "lea_like", "neutral"] {
            assert!(out.contains(key), "missing {key} in:\n{out}");
        }
        assert!(out.contains("lower bound"), "{out}");
        assert!(out.contains("floor/peak"), "{out}");
        assert!(out.contains("BD001"), "every config gets the floor advisory:\n{out}");
        assert!(run(&inv(&["bounds", "nosuch"])).is_err());
    }

    #[test]
    fn explain_covers_the_bd_codes() {
        for code in ["BD001", "BD002", "BD003", "BD004"] {
            let out = lint_text(&inv(&["lint", "--explain", code])).unwrap();
            assert!(out.starts_with(code), "{out}");
        }
    }

    #[test]
    fn profile_runs_on_quick_drr() {
        let out = profile_text(&inv(&["profile", "drr"])).unwrap();
        assert!(out.contains("peak live"));
        assert!(out.contains("top sizes"));
    }

    #[test]
    fn explore_prints_decision_log() {
        let out = explore_text(&inv(&["explore", "drr"])).unwrap();
        assert!(out.contains("A2 ->"));
        assert!(out.contains("final configuration"));
    }

    #[test]
    fn compare_lists_five_managers() {
        let out = compare_text(&inv(&["compare", "render"])).unwrap();
        for m in ["Kingsley", "Lea", "Regions", "Obstacks", "our DM manager"] {
            assert!(out.contains(m), "missing {m} in:\n{out}");
        }
    }

    #[test]
    fn unknown_command_and_workload_error() {
        assert!(run(&inv(&["frobnicate"])).is_err());
        assert!(run(&inv(&["profile", "nosuch"])).is_err());
    }

    #[test]
    fn sharded_explore_prints_merge_log_and_memory_bound() {
        let out = explore_text(&inv(&["explore", "drr", "--shards=3", "--jobs=2"])).unwrap();
        assert!(out.contains("merge log"), "{out}");
        assert!(out.contains("merged configuration"), "{out}");
        assert!(out.contains("largest shard:"), "{out}");
        for code in ["A1", "A2", "C1"] {
            assert!(out.contains(code), "merge log missing {code}:\n{out}");
        }
    }

    #[test]
    fn sharded_compare_still_lists_five_managers() {
        let out = compare_text(&inv(&["compare", "drr", "--shards=2"])).unwrap();
        assert!(out.contains("our DM manager"), "{out}");
        assert!(out.contains("Lea"), "{out}");
    }

    #[test]
    fn phases_with_shards_prints_the_shard_plan() {
        let out = phases_text(&inv(&["phases", "render", "--shards=4"])).unwrap();
        assert!(out.contains("shard plan"), "{out}");
        assert!(out.contains("shard 0"), "{out}");
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dmm-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Output below the header lines (workload/note/checkpoint/counters),
    /// which legitimately differ between live/loaded or fresh/resumed runs.
    fn below_header(s: &str) -> String {
        s.lines()
            .skip_while(|l| !l.starts_with("decision log") && !l.starts_with("merge log"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn parse_robustness_flags() {
        let i = inv(&[
            "explore",
            "--trace=/tmp/t.dmmt",
            "--checkpoint=/tmp/c.journal",
            "--resume",
            "--recover",
            "--budget-steps=5000",
            "--budget-ms=250",
        ]);
        assert_eq!(i.trace.as_deref(), Some("/tmp/t.dmmt"));
        assert_eq!(i.checkpoint.as_deref(), Some("/tmp/c.journal"));
        assert!(i.resume && i.recover);
        assert_eq!(i.budget_steps, Some(5000));
        assert_eq!(i.budget_ms, Some(250));
        let d = inv(&["explore", "drr"]);
        assert!(d.trace.is_none() && d.checkpoint.is_none());
        assert!(!d.resume && !d.recover);
        assert_eq!(d.budget_steps, None);
        assert_eq!(
            inv(&["explore", "--budget-steps=oops"]).budget_steps,
            Some(0),
            "malformed budget trips immediately, never silently unlimited"
        );
        assert_eq!(inv(&["record", "drr", "--out=x.dmmt"]).out.as_deref(), Some("x.dmmt"));
    }

    #[test]
    fn record_then_explore_from_durable_trace_matches_live() {
        let path = tmp("roundtrip.dmmt");
        std::fs::remove_file(&path).ok();
        let rec = record_text(&inv(&["record", "drr", &format!("--out={}", path.display())]))
            .unwrap();
        assert!(rec.contains("checksummed"), "{rec}");
        let live = explore_text(&inv(&["explore", "drr"])).unwrap();
        let loaded =
            explore_text(&inv(&["explore", &format!("--trace={}", path.display())])).unwrap();
        assert_eq!(
            below_header(&live),
            below_header(&loaded),
            "a durable trace must explore bit-identically to a live recording"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_requires_out() {
        assert!(record_text(&inv(&["record", "drr"])).is_err());
        assert!(run(&inv(&["record", "drr"])).is_err());
    }

    #[test]
    fn damaged_trace_is_structured_error_and_recover_salvages_the_prefix() {
        let path = tmp("damaged.dmmt");
        std::fs::remove_file(&path).ok();
        // Multi-frame trace: chopping the tail must leave a whole valid
        // frame to salvage (the quick workloads fit in one frame).
        let mut b = Trace::builder();
        for i in 0..(dmm_core::trace::store::FRAME_EVENTS + 200) {
            let id = b.alloc(32 + (i % 60));
            b.free(id);
        }
        dmm_core::trace::write_trace(&path, &b.finish().unwrap()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let flag = format!("--trace={}", path.display());
        let err = explore_text(&inv(&["explore", &flag])).unwrap_err();
        assert!(err.to_string().contains("TR011"), "{err}");
        let out = explore_text(&inv(&["explore", &flag, "--recover"])).unwrap();
        assert!(out.contains("note: recovered valid prefix"), "{out}");
        assert!(out.contains("final configuration"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpointed_explore_resumes_bit_identical() {
        let path = tmp("resume.journal");
        std::fs::remove_file(&path).ok();
        let flag = format!("--checkpoint={}", path.display());
        let fresh = explore_text(&inv(&["explore", "drr", &flag])).unwrap();
        assert!(fresh.contains("checkpoint:"), "{fresh}");
        assert!(fresh.contains("0 replay(s) already journalled"), "{fresh}");
        // "Crash" after the completed run, then resume: every candidate is
        // served from the journal, and the result is bit-identical.
        let resumed = explore_text(&inv(&["explore", "drr", &flag, "--resume"])).unwrap();
        assert!(
            !resumed.contains("0 replay(s) already journalled"),
            "resume must see the journalled replays:\n{resumed}"
        );
        assert_eq!(below_header(&fresh), below_header(&resumed));
        assert!(
            explore_text(&inv(&["explore", "drr", "--resume"])).is_err(),
            "--resume without --checkpoint must fail fast"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generous_budget_leaves_exploration_unchanged() {
        let plain = explore_text(&inv(&["explore", "drr"])).unwrap();
        let budgeted =
            explore_text(&inv(&["explore", "drr", "--budget-steps=100000000"])).unwrap();
        assert_eq!(below_header(&plain), below_header(&budgeted));
        // A zero budget trips on the very first candidate — loudly.
        assert!(explore_text(&inv(&["explore", "drr", "--budget-steps=0"])).is_err());
    }

    #[test]
    fn explain_covers_the_ex_codes() {
        for code in ["EX001", "EX002", "EX003", "EX004"] {
            let out = lint_text(&inv(&["lint", "--explain", code])).unwrap();
            assert!(out.starts_with(code), "{out}");
        }
    }

    #[test]
    fn help_mentions_the_robustness_surface() {
        let h = help_text();
        for needle in ["record", "--trace=", "--checkpoint=", "--resume", "--budget-steps="] {
            assert!(h.contains(needle), "help missing {needle}");
        }
    }

    #[test]
    fn phases_detects_render_structure() {
        let out = phases_text(&inv(&["phases", "render"])).unwrap();
        assert!(out.contains("announced phases: [0, 1]"), "{out}");
        assert!(out.contains("detected phases"));
    }
}
