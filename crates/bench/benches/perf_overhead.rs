//! Criterion benches for the Section 5 performance claim: the custom
//! manager's execution-time overhead vs. the fastest general-purpose
//! manager (Kingsley), measured by replaying identical recorded traces
//! through every manager.
//!
//! Run with `cargo bench -p dmm-bench` — a report is printed per manager;
//! the paper's claim is a ~10% overhead of the custom manager over
//! Kingsley, with all managers well inside real-time budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmm_baselines::{KingsleyAllocator, LeaAllocator, ObstackAllocator, RegionAllocator};
use dmm_core::manager::PolicyAllocator;
use dmm_core::methodology::Methodology;
use dmm_core::profile::Profile;
use dmm_core::space::DmConfig;
use dmm_core::trace::{replay, Trace};
use dmm_workloads::{DrrWorkload, RenderWorkload, Workload};

fn design(trace: &Trace) -> DmConfig {
    Methodology::new()
        .with_name("our DM manager")
        .explore(trace)
        .expect("exploration succeeds")
        .config
}

fn bench_trace(c: &mut Criterion, group_name: &str, trace: &Trace) {
    let profile = Profile::of(trace);
    let custom_cfg = design(trace);
    let mut group = c.benchmark_group(group_name);
    group.sample_size(20);

    group.bench_function(BenchmarkId::from_parameter("Kingsley"), |b| {
        b.iter(|| {
            let mut m = KingsleyAllocator::with_initial_region(64 * 1024);
            replay(trace, &mut m).expect("replay").peak_footprint
        })
    });
    group.bench_function(BenchmarkId::from_parameter("Lea"), |b| {
        b.iter(|| {
            let mut m = LeaAllocator::new();
            replay(trace, &mut m).expect("replay").peak_footprint
        })
    });
    group.bench_function(BenchmarkId::from_parameter("Regions"), |b| {
        b.iter(|| {
            let mut m = RegionAllocator::with_profile(&profile);
            replay(trace, &mut m).expect("replay").peak_footprint
        })
    });
    group.bench_function(BenchmarkId::from_parameter("Obstacks"), |b| {
        b.iter(|| {
            let mut m = ObstackAllocator::new();
            replay(trace, &mut m).expect("replay").peak_footprint
        })
    });
    group.bench_function(BenchmarkId::from_parameter("our DM manager"), |b| {
        b.iter(|| {
            let mut m = PolicyAllocator::new(custom_cfg.clone()).expect("valid config");
            replay(trace, &mut m).expect("replay").peak_footprint
        })
    });
    group.finish();
}

fn perf_overhead_drr(c: &mut Criterion) {
    let trace = DrrWorkload::quick(0).record().expect("record");
    bench_trace(c, "perf_overhead_drr", &trace);
}

fn perf_overhead_render(c: &mut Criterion) {
    let trace = RenderWorkload::quick(0).record().expect("record");
    bench_trace(c, "perf_overhead_render", &trace);
}

fn methodology_cost(c: &mut Criterion) {
    // How long one full tree traversal (the design-time cost the paper
    // quotes as "two weeks by hand" vs. automated exploration) takes.
    let trace = DrrWorkload::quick(0).record().expect("record");
    let mut group = c.benchmark_group("methodology");
    group.sample_size(10);
    group.bench_function("explore_drr_quick", |b| {
        b.iter(|| {
            Methodology::new()
                .explore(&trace)
                .expect("exploration succeeds")
                .footprint
                .peak_footprint
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    perf_overhead_drr,
    perf_overhead_render,
    methodology_cost
);
criterion_main!(benches);
