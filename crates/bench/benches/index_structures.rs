//! Criterion microbenches of the A1 free-index structures: the wall-clock
//! complement of the deterministic step-count cost model (soft arrows of
//! Figure 2: best/exact fit want the size-ordered tree).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dmm_core::heap::block::Span;
use dmm_core::heap::index::new_index;
use dmm_core::heap::tiling::BlockRef;
use dmm_core::space::trees::{BlockStructure, FitAlgorithm};

fn index_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_insert_find_remove");
    group.sample_size(20);
    for structure in BlockStructure::ALL {
        group.bench_function(BenchmarkId::from_parameter(format!("{structure}")), |b| {
            b.iter(|| {
                let mut idx = new_index(structure);
                let mut steps = 0u64;
                for i in 0..512usize {
                    idx.insert(
                        Span::new(i * 128, 16 + (i % 31) * 8),
                        BlockRef::from_index(i as u32),
                        &mut steps,
                    );
                }
                let mut found = 0usize;
                for i in 0..512usize {
                    if let Some(f) = idx.find(FitAlgorithm::BestFit, 16 + (i % 29) * 8, &mut steps)
                    {
                        idx.remove(f.token, f.span, &mut steps);
                        idx.insert(f.span, f.block, &mut steps);
                        found += 1;
                    }
                }
                (found, steps)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, index_ops);
criterion_main!(benches);
