//! Sharded exploration at scale: streams a generated large churn trace
//! window by window (never materialising it whole), explores each shard,
//! merges the designs by score-weighted vote, and reports shard counts,
//! cache hits and the peak resident trace bytes.
//!
//! Usage: `cargo run -p dmm-bench --release --bin sharded_explore
//! [--quick] [--csv] [--shards=N] [--jobs=N]`

fn main() {
    let opts = dmm_bench::opts::parse();
    let (table, summary) = dmm_bench::sharded_explore(opts.quick, opts.shards, opts.jobs, 0)
        .expect("sharded exploration harness failed");
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
    eprint!("{summary}");
}
