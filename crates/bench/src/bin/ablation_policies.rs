//! Design-choice ablations: one-tree deviations (fit algorithm, coalescing
//! policy) from the paper's DRR custom manager.
//!
//! Usage: `cargo run -p dmm-bench --release --bin ablation_policies
//! [--quick] [--csv]`



fn main() {
    let opts = dmm_bench::opts::parse();
    let table = dmm_bench::ablation_policies(opts.quick).expect("ablation harness failed");
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
}
