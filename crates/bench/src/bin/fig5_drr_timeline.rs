//! Regenerates **Figure 5**: DRR memory-footprint-over-time for Lea vs.
//! the methodology's custom manager.
//!
//! Usage: `cargo run -p dmm-bench --release --bin fig5_drr_timeline
//! [--quick] [--csv]` — CSV emits `series,event,footprint` rows.



fn main() {
    let opts = dmm_bench::opts::parse();
    let (lea, custom, plot) =
        dmm_bench::fig5_drr_timeline(opts.quick).expect("figure 5 harness failed");
    if opts.csv {
        println!("series,event,footprint");
        for p in &lea.points {
            println!("lea,{},{}", p.event, p.footprint);
        }
        for p in &custom.points {
            println!("custom,{},{}", p.event, p.footprint);
        }
    } else {
        println!("Figure 5: memory footprint behaviour of Lea and our DM manager (DRR)\n");
        print!("{plot}");
    }
}
