//! Regenerates **Figure 1**: the DM-management search space taxonomy,
//! printed from the live type model.
//!
//! Usage: `cargo run -p dmm-bench --bin fig1_space`

fn main() {
    print!("{}", dmm_bench::fig1_space_text());
}
