//! Regenerates **Table 1**: maximum memory footprint (bytes) of every
//! manager on the three case studies.
//!
//! Usage: `cargo run -p dmm-bench --release --bin table1_footprint
//! [--quick] [--csv] [--seeds=N] [--jobs=N]`

fn main() {
    let opts = dmm_bench::opts::parse();
    let (table, counters) = dmm_bench::table1_footprint(opts.seeds, opts.quick, opts.jobs)
        .expect("table 1 harness failed");
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
    eprintln!("exploration: {counters}");
}
