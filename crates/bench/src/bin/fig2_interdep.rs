//! Regenerates **Figure 2**: the interdependency arrows between the
//! orthogonal trees, printed from the live rule engine.
//!
//! Usage: `cargo run -p dmm-bench --bin fig2_interdep`

fn main() {
    print!("{}", dmm_bench::fig2_interdep_text());
}
