//! Deterministic execution-cost proxy (search steps) per manager on the
//! DRR trace; wall-clock numbers come from `cargo bench` (`perf_overhead`).
//!
//! Usage: `cargo run -p dmm-bench --release --bin perf_steps [--quick]
//! [--csv] [--jobs=N]`

fn main() {
    let opts = dmm_bench::opts::parse();
    let (table, counters) =
        dmm_bench::perf_steps_table(opts.quick, opts.jobs).expect("perf harness failed");
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
    eprintln!("exploration: {counters}");
}
