//! The footprint/performance trade-off sweep the paper's conclusion
//! promises ("improving performance consuming a little more memory
//! footprint"): the weighted methodology objective at several step
//! weights, on the DRR trace.
//!
//! Usage: `cargo run -p dmm-bench --release --bin tradeoff_curve [--quick]
//! [--csv] [--jobs=N]`

use dmm_core::methodology::{tradeoff_curve_with, ExplorationEngine};
use dmm_report::{Cell, Table};
use dmm_workloads::{DrrWorkload, Workload};

fn main() {
    let opts = dmm_bench::opts::parse();
    let workload = if opts.quick {
        DrrWorkload::quick(0)
    } else {
        DrrWorkload::case_study(0)
    };
    let trace = workload.record().expect("record");
    let weights = [0.0, 0.05, 0.2, 1.0, 5.0];
    // One engine serves every sweep point: the weights re-derive many of
    // the same configurations, which become replay-cache hits.
    let engine = ExplorationEngine::new(opts.jobs);
    let points = tradeoff_curve_with(&trace, &weights, &engine).expect("sweep");
    let mut table = Table::new(
        "Trade-off sweep: step weight vs footprint vs search steps (DRR)",
        vec![
            "step weight".into(),
            "peak footprint".into(),
            "search steps".into(),
            "fit / structure chosen".into(),
        ],
    );
    for p in points {
        table.push_row(
            format!("{}", p.step_weight),
            vec![
                Cell::Bytes(p.peak_footprint),
                Cell::Number(p.search_steps as f64),
                Cell::Text(format!("{} / {}", p.config.fit, p.config.block_structure)),
            ],
        );
    }
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
    eprintln!("exploration: {}", engine.counters());
}
