//! Regenerates **Figure 3**: the `A3 = none` constraint-propagation
//! cascade, computed live.
//!
//! Usage: `cargo run -p dmm-bench --bin fig3_example`

fn main() {
    print!("{}", dmm_bench::fig3_example_text());
}
