//! Replay inner-loop benchmark: classic interpreter vs compiled kernel.
//!
//! Measures events/second for [`dmm_core::trace::replay`] (per-event
//! hashing, dyn dispatch) against [`dmm_core::trace::replay_compiled_with`]
//! (slot-resolved events, monomorphized, reused scratch) on the paper
//! workloads plus `synthetic::large_churn`, asserting bit-identical
//! statistics first, and writes the machine-readable trajectory to
//! `BENCH_replay.json`.
//!
//! Usage: `cargo run -p dmm-bench --release --bin replay_hot
//! [--quick] [--csv] [--check] [--out=PATH]`
//!
//! `--check` is the CI regression tripwire; it exits non-zero when any
//! gate fails:
//!
//! 1. **interpreter gate** — the compiled kernel must be at least as fast
//!    as the classic interpreter on the `large_churn` nop row;
//! 2. **manager-bound gate vs PR 4** — the end-to-end DRR-manager row
//!    must be at least 1.3× the committed PR 4 baseline (normalised by
//!    the same run's nop row, so machine speed cancels — see
//!    `dmm_bench::GateBaseline`). This is the boundary-tag tiling's
//!    speedup staying regression-guarded;
//! 3. **manager-bound gate vs PR 5** — the same row must be at least
//!    1.5× the PR 5 baseline, guarding the order-statistic free-list
//!    layer's speedup (lazy rank replica, bitmap size set, O(1) hit
//!    charges) at both quick and full scale;
//! 4. **sweep gate** (release full-scale only) — the projected + fused
//!    sweep must strictly reduce replays, fire the projection tier, and
//!    finish at least 1.5× faster wall-clock than the plain serial
//!    sweep, with the winner bit-identical (asserted inside the
//!    harness).

fn main() {
    let opts = dmm_bench::opts::parse();
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .unwrap_or("BENCH_replay.json")
        .to_string();

    let (table, report) = dmm_bench::replay_hot(opts.quick).expect("replay_hot harness failed");
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
    std::fs::write(&out, report.to_json()).expect("failed to write the JSON report");
    eprintln!("wrote {out}");
    let e = &report.exploration;
    eprintln!(
        "exploration ({}): {} enumerated -> {} evaluations ({} replays, {} cache hits, \
         {} projection hits, {} statically pruned, {} bound pruned, {} quarantined, \
         {} budget exceeded)",
        e.workload, e.enumerated, e.evaluations, e.replays, e.cache_hits, e.projection_hits,
        e.statically_pruned, e.bound_pruned, e.quarantined, e.budget_exceeded
    );
    let s = &report.sweep;
    eprintln!(
        "sweep ({}, batch {}): baseline {} replays in {:.3}s vs projected {} replays \
         ({} projection hits) in {:.3}s -> {:.2}x wall-clock, {:.1}% of enumerated replayed",
        s.workload,
        s.batch,
        s.baseline.replays,
        s.baseline.wallclock_secs,
        s.projected.replays,
        s.projected.projection_hits,
        s.projected.wallclock_secs,
        s.sweep_wallclock_speedup,
        100.0 * s.projected_replay_ratio
    );

    if check {
        // Branch-and-bound gate: the buckets (including the resilience
        // counters) must partition the enumerated space, both prune kinds
        // must actually fire on the full release sweep, and an uninjected,
        // unbudgeted sweep must be fault-free.
        if e.evaluations + e.projection_hits + e.statically_pruned + e.bound_pruned
            + e.quarantined + e.budget_exceeded
            != e.enumerated
            || e.statically_pruned == 0
            || e.bound_pruned == 0
        {
            eprintln!(
                "REGRESSION: exploration pruning accounting broken or a prune kind never \
                 fired ({} + {} + {} + {} + {} + {} vs {} enumerated)",
                e.evaluations, e.projection_hits, e.statically_pruned, e.bound_pruned,
                e.quarantined, e.budget_exceeded, e.enumerated
            );
            std::process::exit(1);
        }
        if e.cache_hits != 0 {
            eprintln!(
                "REGRESSION: {} structural cache hits on an exhaustive sweep — the space \
                 iterator must enumerate each coherent config exactly once",
                e.cache_hits
            );
            std::process::exit(1);
        }
        if e.quarantined != 0 || e.budget_exceeded != 0 {
            eprintln!(
                "REGRESSION: healthy sweep reported faults ({} quarantined, {} budget \
                 exceeded) with no fault plan or budget installed",
                e.quarantined, e.budget_exceeded
            );
            std::process::exit(1);
        }
        eprintln!(
            "exploration gate ok: {:.1}% bound pruned, {:.1}% statically pruned",
            100.0 * e.bound_pruned as f64 / e.enumerated as f64,
            100.0 * e.statically_pruned as f64 / e.enumerated as f64
        );

        let gate = report.gate_row();
        if gate.speedup < 1.0 {
            eprintln!(
                "REGRESSION: compiled replay is slower than classic on {} ({:.0} vs {:.0} ev/s, {:.2}x)",
                gate.workload,
                gate.compiled_events_per_sec,
                gate.classic_events_per_sec,
                gate.speedup
            );
            std::process::exit(1);
        }
        eprintln!(
            "interpreter gate ok: {:.2}x on {} (compiled {:.0} ev/s vs classic {:.0} ev/s)",
            gate.speedup, gate.workload, gate.compiled_events_per_sec, gate.classic_events_per_sec
        );

        // Manager-bound gates: the end-to-end manager simulation must stay
        // >= 1.3x the committed PR 4 entry (boundary-tag tiling) and
        // >= 1.5x the committed PR 5 entry (order-statistic free lists) on
        // the gate workload.
        const PR4_MANAGER_GATE: f64 = 1.3;
        const PR5_MANAGER_GATE: f64 = 1.5;
        let mgr = report.manager_gate_row();
        for (label, gate, speedup) in [
            ("PR 4", PR4_MANAGER_GATE, report.manager_bound_speedup_vs_pr4),
            ("PR 5", PR5_MANAGER_GATE, report.manager_bound_speedup_vs_pr5),
        ] {
            if speedup < gate {
                eprintln!(
                    "REGRESSION: manager-bound replay on {} x {} is only {:.2}x the {label} baseline \
                     (gate {gate}x; {:.0} ev/s now, normalised by the nop row)",
                    mgr.workload, mgr.manager, speedup, mgr.compiled_events_per_sec
                );
                std::process::exit(1);
            }
            eprintln!(
                "manager-bound gate ok: {:.2}x the {label} baseline on {} x {} ({:.0} ev/s end-to-end)",
                speedup, mgr.workload, mgr.manager, mgr.compiled_events_per_sec
            );
        }

        // Sweep gate: projection + fused batching must pay for themselves
        // on the full branch-and-bound space. Winner bit-identity was
        // already asserted inside the harness; here the speed and replay
        // reduction are enforced. Debug builds run the shadow oracle (a
        // fresh replay per projection hit — the soundness check), so the
        // speed half of the gate is release-only; the accounting half
        // always holds.
        const SWEEP_GATE: f64 = 1.5;
        for side in [&s.baseline, &s.projected] {
            if side.evaluations + side.projection_hits + side.statically_pruned
                + side.bound_pruned
                != side.enumerated
            {
                eprintln!(
                    "REGRESSION: {} sweep accounting broken ({} + {} + {} + {} vs {} enumerated)",
                    side.label, side.evaluations, side.projection_hits,
                    side.statically_pruned, side.bound_pruned, side.enumerated
                );
                std::process::exit(1);
            }
        }
        if !cfg!(debug_assertions) {
            if s.projected.projection_hits == 0 || s.projected.replays >= s.baseline.replays {
                eprintln!(
                    "REGRESSION: projection did not reduce replays ({} projected vs {} \
                     baseline, {} projection hits)",
                    s.projected.replays, s.baseline.replays, s.projected.projection_hits
                );
                std::process::exit(1);
            }
            if s.sweep_wallclock_speedup < SWEEP_GATE {
                eprintln!(
                    "REGRESSION: projected+batched sweep is only {:.2}x the serial baseline \
                     (gate {SWEEP_GATE}x; {:.3}s vs {:.3}s)",
                    s.sweep_wallclock_speedup, s.projected.wallclock_secs,
                    s.baseline.wallclock_secs
                );
                std::process::exit(1);
            }
            eprintln!(
                "sweep gate ok: {:.2}x wall-clock, replays {} -> {} ({} projection hits, \
                 {:.1}% of enumerated replayed)",
                s.sweep_wallclock_speedup, s.baseline.replays, s.projected.replays,
                s.projected.projection_hits, 100.0 * s.projected_replay_ratio
            );
        } else {
            eprintln!("sweep gate: accounting ok (speed half is release-only)");
        }
    }
}
