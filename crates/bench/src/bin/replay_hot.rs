//! Replay inner-loop benchmark: classic interpreter vs compiled kernel.
//!
//! Measures events/second for [`dmm_core::trace::replay`] (per-event
//! hashing, dyn dispatch) against [`dmm_core::trace::replay_compiled_with`]
//! (slot-resolved events, monomorphized, reused scratch) on the paper
//! workloads plus `synthetic::large_churn`, asserting bit-identical
//! statistics first, and writes the machine-readable trajectory to
//! `BENCH_replay.json`.
//!
//! Usage: `cargo run -p dmm-bench --release --bin replay_hot
//! [--quick] [--csv] [--check] [--out=PATH]`
//!
//! `--check` exits non-zero if the compiled kernel is not at least as fast
//! as the classic interpreter on the `large_churn` gate row — the CI
//! regression tripwire.

fn main() {
    let opts = dmm_bench::opts::parse();
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .find_map(|a| a.strip_prefix("--out="))
        .unwrap_or("BENCH_replay.json")
        .to_string();

    let (table, report) = dmm_bench::replay_hot(opts.quick).expect("replay_hot harness failed");
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
    std::fs::write(&out, report.to_json()).expect("failed to write the JSON report");
    eprintln!("wrote {out}");

    if check {
        let gate = report.gate_row();
        if gate.speedup < 1.0 {
            eprintln!(
                "REGRESSION: compiled replay is slower than classic on {} ({:.0} vs {:.0} ev/s, {:.2}x)",
                gate.workload,
                gate.compiled_events_per_sec,
                gate.classic_events_per_sec,
                gate.speedup
            );
            std::process::exit(1);
        }
        eprintln!(
            "check ok: {:.2}x on {} (compiled {:.0} ev/s vs classic {:.0} ev/s)",
            gate.speedup, gate.workload, gate.compiled_events_per_sec, gate.classic_events_per_sec
        );
    }
}
