//! Regenerates the **Section 1 motivation**: a static worst-case pool vs.
//! dynamic memory management on the DRR traces.
//!
//! Usage: `cargo run -p dmm-bench --release --bin motivation_static
//! [--quick] [--csv] [--seeds=N]`



fn main() {
    let opts = dmm_bench::opts::parse();
    let table =
        dmm_bench::motivation_static(opts.seeds, opts.quick).expect("motivation harness failed");
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
}
