//! Regenerates the **Figure 4** experiment: the paper's traversal order
//! vs. a myopic A3-first designer on the DRR trace.
//!
//! Usage: `cargo run -p dmm-bench --release --bin fig4_order_ablation
//! [--quick] [--csv] [--jobs=N]`

fn main() {
    let opts = dmm_bench::opts::parse();
    let (table, counters) =
        dmm_bench::fig4_order_ablation(opts.quick, opts.jobs).expect("figure 4 harness failed");
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_ascii());
    }
    eprintln!("exploration: {counters}");
}
