//! A fixed-block-size region allocator.
//!
//! Models the "simple region allocators" of recent embedded real-time OSs
//! that the paper compares against on the 3D-reconstruction case study
//! (Gay & Aiken-style regions with per-region fixed block sizes, as in
//! RTEMS partitions): each region serves exactly one block size; requests
//! round up to the region's slot, creating the internal fragmentation the
//! paper blames ("the requests of several block sizes creates internal
//! fragmentation"). Regions grow in chunks and never shrink.

use std::collections::HashMap;

use dmm_core::error::{Error, Result};
use dmm_core::heap::Arena;
use dmm_core::manager::{Allocator, BlockHandle};
use dmm_core::metrics::AllocStats;
use dmm_core::units::{align_up, MIN_ALIGN, POINTER_BYTES, SIZE_FIELD_BYTES};

/// Bytes a chunk extension aims for; small-slot regions carve many slots
/// per chunk, large-slot regions carve one.
const CHUNK_TARGET_BYTES: usize = 8 * 1024;
/// Ceiling on slots carved per chunk.
const MAX_SLOTS_PER_CHUNK: usize = 16;

fn slots_per_chunk(slot: usize) -> usize {
    (CHUNK_TARGET_BYTES / slot.max(1)).clamp(1, MAX_SLOTS_PER_CHUNK)
}

#[derive(Debug)]
struct Region {
    slot: usize,
    free: Vec<usize>,
}

/// Hand-rolled fixed-slot region allocator.
///
/// # Examples
///
/// ```
/// use dmm_baselines::RegionAllocator;
/// use dmm_core::manager::Allocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut r = RegionAllocator::with_regions(&[64, 1024, 65536]);
/// let h = r.alloc(100)?; // served from the 1024-byte region
/// assert_eq!(r.stats().live_block, 1024);
/// r.free(h)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RegionAllocator {
    arena: Arena,
    regions: Vec<Region>,
    /// Oversize blocks served directly, keyed by offset -> length.
    oversize_free: HashMap<usize, Vec<usize>>, // len -> offsets
    live: HashMap<usize, (usize, usize)>,      // offset -> (req, block len)
    slot_of_live: HashMap<usize, Option<usize>>, // offset -> region idx (None = oversize)
    stats: AllocStats,
}

impl RegionAllocator {
    /// Regions with the given slot sizes (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty or not strictly ascending.
    pub fn with_regions(slots: &[usize]) -> Self {
        assert!(!slots.is_empty(), "at least one region required");
        assert!(
            slots.windows(2).all(|w| w[0] < w[1]),
            "region slots must be strictly ascending"
        );
        RegionAllocator {
            arena: Arena::unbounded(),
            regions: slots
                .iter()
                .map(|&s| Region {
                    slot: align_up(s, MIN_ALIGN),
                    free: Vec::new(),
                })
                .collect(),
            oversize_free: HashMap::new(),
            live: HashMap::new(),
            slot_of_live: HashMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// The coarse default region set used when no profile is available
    /// (64 B, 1 KiB, 16 KiB, 128 KiB, 512 KiB, 4 MiB).
    pub fn with_default_regions() -> Self {
        Self::with_regions(&[
            64,
            1024,
            16 * 1024,
            128 * 1024,
            512 * 1024,
            4 * 1024 * 1024,
        ])
    }

    /// Regions sized the way the paper's "manually designed" region
    /// manager was: a designer profiles the application and dedicates a
    /// region to each dominant block size (rounded to a designer-friendly
    /// value), plus one for the largest blocks seen.
    pub fn with_profile(profile: &dmm_core::profile::Profile) -> Self {
        fn designer_round(n: usize) -> usize {
            // Small blocks round to the next power of two, large ones to
            // the next 4 KiB boundary — what a human would pick.
            if n <= 4096 {
                n.next_power_of_two().max(16)
            } else {
                align_up(n, 4096)
            }
        }
        let mut slots: Vec<usize> = profile
            .histogram
            .top_k(4)
            .into_iter()
            .map(|(s, _)| designer_round(s))
            .collect();
        // Also cover the largest sizes by byte volume (e.g. image buffers
        // that occur rarely but dominate memory).
        let mut biggest: Vec<usize> = profile.histogram.iter().map(|(s, _)| s).collect();
        biggest.sort_unstable();
        for s in biggest.into_iter().rev().take(2) {
            slots.push(designer_round(s));
        }
        slots.sort_unstable();
        slots.dedup();
        if slots.is_empty() {
            slots.push(64);
        }
        Self::with_regions(&slots)
    }

    fn static_overhead(&self) -> usize {
        // Region descriptor: slot size + free-list head + chunk counter.
        self.regions.len() * (SIZE_FIELD_BYTES + POINTER_BYTES + SIZE_FIELD_BYTES)
    }

    fn sync(&mut self) {
        self.stats
            .set_system(self.arena.brk(), self.static_overhead());
    }

    fn region_for(&self, len: usize) -> Option<usize> {
        self.regions.iter().position(|r| r.slot >= len)
    }
}

impl Allocator for RegionAllocator {
    fn name(&self) -> &str {
        "Regions"
    }

    fn alloc(&mut self, req: usize) -> Result<BlockHandle> {
        let req = req.max(1);
        let need = align_up(req, MIN_ALIGN);
        match self.region_for(need) {
            Some(idx) => {
                self.stats.search_steps += idx as u64 + 1; // walk region list
                let slot = self.regions[idx].slot;
                let offset = match self.regions[idx].free.pop() {
                    Some(o) => o,
                    None => {
                        let n = slots_per_chunk(slot);
                        let base = self.arena.sbrk(slot * n)?;
                        self.stats.sbrk_calls += 1;
                        for i in 1..n {
                            self.regions[idx].free.push(base + i * slot);
                        }
                        base
                    }
                };
                self.live.insert(offset, (req, slot));
                self.slot_of_live.insert(offset, Some(idx));
                self.stats.on_alloc(req, slot);
                self.sync();
                Ok(BlockHandle::new(offset, 0))
            }
            None => {
                // Oversize: dedicated block, reusable only at exactly the
                // same rounded length.
                self.stats.search_steps += self.regions.len() as u64 + 1;
                let offset = match self
                    .oversize_free
                    .get_mut(&need)
                    .and_then(|v| v.pop())
                {
                    Some(o) => o,
                    None => {
                        let base = self.arena.sbrk(need)?;
                        self.stats.sbrk_calls += 1;
                        base
                    }
                };
                self.live.insert(offset, (req, need));
                self.slot_of_live.insert(offset, None);
                self.stats.on_alloc(req, need);
                self.sync();
                Ok(BlockHandle::new(offset, 0))
            }
        }
    }

    fn free(&mut self, handle: BlockHandle) -> Result<()> {
        let offset = handle.offset();
        let (req, len) = self
            .live
            .remove(&offset)
            .ok_or(Error::InvalidFree { offset })?;
        let region = self
            .slot_of_live
            .remove(&offset)
            .expect("live block has a region record");
        self.stats.search_steps += 1;
        match region {
            Some(idx) => self.regions[idx].free.push(offset),
            None => self.oversize_free.entry(len).or_default().push(offset),
        }
        self.stats.on_free(req, len);
        self.sync();
        Ok(())
    }

    fn footprint(&self) -> usize {
        self.stats.system
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }

    fn reset(&mut self) {
        let slots: Vec<usize> = self.regions.iter().map(|r| r.slot).collect();
        *self = RegionAllocator::with_regions(&slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_to_region_slots() {
        let mut r = RegionAllocator::with_regions(&[64, 1024]);
        let _ = r.alloc(10).unwrap();
        assert_eq!(r.stats().live_block, 64);
        let _ = r.alloc(65).unwrap();
        assert_eq!(r.stats().live_block, 64 + 1024);
        // Fragmentation: 65 bytes in a 1024-byte slot.
        assert!(r.stats().internal_fragmentation() >= 959);
    }

    #[test]
    fn chunks_carve_multiple_slots() {
        let mut r = RegionAllocator::with_regions(&[64]);
        let n = slots_per_chunk(64);
        assert_eq!(n, MAX_SLOTS_PER_CHUNK);
        let _ = r.alloc(64).unwrap();
        assert_eq!(r.stats().sbrk_calls, 1);
        for _ in 0..n - 1 {
            let _ = r.alloc(64).unwrap();
        }
        assert_eq!(r.stats().sbrk_calls, 1, "chunk serves {n} slots");
        let _ = r.alloc(64).unwrap();
        assert_eq!(r.stats().sbrk_calls, 2);
    }

    #[test]
    fn large_slot_regions_carve_one_slot_per_chunk() {
        assert_eq!(slots_per_chunk(512 * 1024), 1);
        let mut r = RegionAllocator::with_regions(&[512 * 1024]);
        let _ = r.alloc(400_000).unwrap();
        assert_eq!(
            r.footprint() - r.stats().static_overhead,
            512 * 1024,
            "one big slot reserved, not a 16-slot chunk"
        );
    }

    #[test]
    fn slots_recycle_within_their_region() {
        let mut r = RegionAllocator::with_regions(&[64, 1024]);
        let a = r.alloc(600).unwrap();
        r.free(a).unwrap();
        let before = r.footprint();
        let b = r.alloc(900).unwrap(); // same region, reuses the slot
        assert_eq!(b.offset(), a.offset());
        assert_eq!(r.footprint(), before);
    }

    #[test]
    fn oversize_blocks_reuse_only_exact_lengths() {
        let mut r = RegionAllocator::with_regions(&[64]);
        let a = r.alloc(10_000).unwrap();
        r.free(a).unwrap();
        let b = r.alloc(10_000).unwrap();
        assert_eq!(b.offset(), a.offset(), "exact oversize reuse");
        let before = r.footprint();
        let _c = r.alloc(10_008).unwrap(); // different rounded length
        assert!(r.footprint() > before, "no cross-size reuse");
    }

    #[test]
    fn never_returns_memory() {
        let mut r = RegionAllocator::with_default_regions();
        let hs: Vec<_> = (0..40).map(|i| r.alloc(100 + i * 97).unwrap()).collect();
        let peak = r.footprint();
        for h in hs {
            r.free(h).unwrap();
        }
        assert_eq!(r.footprint(), peak);
        assert_eq!(r.stats().trims, 0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_regions_are_rejected() {
        let _ = RegionAllocator::with_regions(&[1024, 64]);
    }
}
