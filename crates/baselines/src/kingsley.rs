//! The Kingsley power-of-two segregated-freelist allocator.
//!
//! The fastest general-purpose manager in the paper's experiments and the
//! basis of Windows-family allocators: requests round up to a power-of-two
//! class, each class keeps a LIFO free list, fresh memory is taken a page
//! at a time and distributed among the class lists, and nothing is ever
//! split, merged or returned to the system. Footprint suffers exactly as
//! Section 5 describes: "only a limited amount of block sizes is used and
//! thus memory is misused".

use std::collections::HashMap;

use dmm_core::error::{Error, Result};
use dmm_core::heap::Arena;
use dmm_core::manager::{Allocator, BlockHandle};
use dmm_core::metrics::AllocStats;
use dmm_core::units::{pow2_class, MIN_BLOCK, POINTER_BYTES, SBRK_GRANULARITY, SIZE_FIELD_BYTES};

/// Per-block header: the class size (so `free` can route the block back).
const HEADER: usize = SIZE_FIELD_BYTES;

/// Hand-rolled Kingsley allocator.
///
/// # Examples
///
/// ```
/// use dmm_baselines::KingsleyAllocator;
/// use dmm_core::manager::Allocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut k = KingsleyAllocator::new();
/// let h = k.alloc(100)?; // rounds to the 128-byte class
/// let before = k.footprint();
/// k.free(h)?;
/// assert_eq!(k.footprint(), before, "Kingsley never returns memory");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KingsleyAllocator {
    arena: Arena,
    /// Free list per class; index `i` holds blocks of `MIN_BLOCK << i`.
    free_lists: Vec<Vec<usize>>,
    live: HashMap<usize, (usize, usize)>,
    stats: AllocStats,
}

impl Default for KingsleyAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl KingsleyAllocator {
    /// A fresh allocator with an unbounded arena and no initial region.
    pub fn new() -> Self {
        KingsleyAllocator {
            arena: Arena::unbounded(),
            free_lists: Vec::new(),
            live: HashMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// The Windows-flavoured variant of Section 5: "an initial memory
    /// region is reserved and distributed among the different lists of
    /// block sizes. However, only a limited amount of block sizes is used
    /// and thus memory is misused."
    ///
    /// `bytes` are reserved immediately and split evenly across the
    /// classes from 16 B to 8 KiB; shares belonging to classes the
    /// application never requests are pure waste.
    pub fn with_initial_region(bytes: usize) -> Self {
        let mut k = KingsleyAllocator::new();
        if bytes == 0 {
            return k;
        }
        const CLASSES: usize = 10; // 16 B .. 8 KiB
        k.free_lists.resize_with(CLASSES, Vec::new);
        let share = bytes / CLASSES;
        for idx in 0..CLASSES {
            let class = MIN_BLOCK << idx;
            let count = share / class;
            if count == 0 {
                continue;
            }
            let base = k
                .arena
                .sbrk(count * class)
                .expect("unbounded arena cannot fail");
            for i in 0..count {
                k.free_lists[idx].push(base + i * class);
            }
        }
        k.stats.sbrk_calls += 1;
        k.sync();
        k
    }

    fn class_of(req: usize) -> (usize, usize) {
        let class = pow2_class(req + HEADER);
        let idx = (class.trailing_zeros() - MIN_BLOCK.trailing_zeros()) as usize;
        (class, idx)
    }

    fn static_overhead(&self) -> usize {
        // One list-head pointer per class.
        self.free_lists.len() * POINTER_BYTES
    }

    fn sync(&mut self) {
        self.stats
            .set_system(self.arena.brk(), self.static_overhead());
    }
}

impl Allocator for KingsleyAllocator {
    fn name(&self) -> &str {
        "Kingsley"
    }

    fn alloc(&mut self, req: usize) -> Result<BlockHandle> {
        let req = req.max(1);
        let (class, idx) = Self::class_of(req);
        if self.free_lists.len() <= idx {
            self.free_lists.resize_with(idx + 1, Vec::new);
        }
        self.stats.search_steps += 1; // class routing is a shift
        let offset = match self.free_lists[idx].pop() {
            Some(o) => o,
            None => {
                // Grab a granule and distribute it among this class's list.
                let reserve = class.max(SBRK_GRANULARITY);
                let base = self.arena.sbrk(reserve)?;
                self.stats.sbrk_calls += 1;
                let mut at = base + class;
                while at + class <= base + reserve {
                    self.free_lists[idx].push(at);
                    at += class;
                }
                base
            }
        };
        self.live.insert(offset, (req, idx));
        self.stats.on_alloc(req, class);
        self.sync();
        Ok(BlockHandle::new(offset, 0))
    }

    fn free(&mut self, handle: BlockHandle) -> Result<()> {
        let offset = handle.offset();
        let (req, idx) = self.live.remove(&offset).ok_or(Error::InvalidFree { offset })?;
        self.stats.search_steps += 1; // read header, push head
        self.free_lists[idx].push(offset);
        self.stats.on_free(req, MIN_BLOCK << idx);
        self.sync();
        Ok(())
    }

    fn footprint(&self) -> usize {
        self.stats.system
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }

    fn reset(&mut self) {
        *self = KingsleyAllocator::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_power_of_two_classes() {
        let mut k = KingsleyAllocator::new();
        let _ = k.alloc(100).unwrap(); // 100 + 4 -> 128
        assert_eq!(k.stats().live_block, 128);
        let _ = k.alloc(124).unwrap(); // 124 + 4 -> 128
        assert_eq!(k.stats().live_block, 256);
        let _ = k.alloc(125).unwrap(); // 125 + 4 -> 256
        assert_eq!(k.stats().live_block, 512);
    }

    #[test]
    fn page_is_distributed_among_class_list() {
        let mut k = KingsleyAllocator::new();
        let _ = k.alloc(60).unwrap(); // 64-byte class; page carves 64 blocks
        assert_eq!(k.footprint() - k.stats().static_overhead, SBRK_GRANULARITY);
        // 63 siblings are ready: next allocs must not sbrk.
        let before = k.stats().sbrk_calls;
        for _ in 0..63 {
            let _ = k.alloc(60).unwrap();
        }
        assert_eq!(k.stats().sbrk_calls, before);
        // The 65th block of this class needs another page.
        let _ = k.alloc(60).unwrap();
        assert_eq!(k.stats().sbrk_calls, before + 1);
    }

    #[test]
    fn freed_blocks_are_reused_lifo() {
        let mut k = KingsleyAllocator::new();
        let a = k.alloc(60).unwrap();
        let b = k.alloc(60).unwrap();
        k.free(a).unwrap();
        k.free(b).unwrap();
        let c = k.alloc(60).unwrap();
        assert_eq!(c.offset(), b.offset(), "LIFO reuse");
    }

    #[test]
    fn footprint_is_monotone_nondecreasing() {
        let mut k = KingsleyAllocator::new();
        let mut peak = 0;
        let hs: Vec<_> = (0..100).map(|i| k.alloc(16 + i * 37).unwrap()).collect();
        for h in hs {
            assert!(k.footprint() >= peak);
            peak = k.footprint();
            k.free(h).unwrap();
            assert_eq!(k.footprint(), peak, "free never shrinks Kingsley");
        }
        assert_eq!(k.stats().trims, 0);
        assert_eq!(k.stats().coalesces, 0);
        assert_eq!(k.stats().splits, 0);
    }

    #[test]
    fn large_blocks_get_exact_power_of_two_reservations() {
        let mut k = KingsleyAllocator::new();
        let _ = k.alloc(100_000).unwrap(); // -> 131072 class
        assert_eq!(k.footprint() - k.stats().static_overhead, 131_072);
    }

    #[test]
    fn internal_fragmentation_is_visible() {
        let mut k = KingsleyAllocator::new();
        let _ = k.alloc(65).unwrap(); // 65+4 -> 128 class
        assert_eq!(k.stats().internal_fragmentation(), 63);
    }

    #[test]
    fn initial_region_is_reserved_up_front_and_reused() {
        let mut k = KingsleyAllocator::with_initial_region(256 * 1024);
        let base = k.footprint();
        assert!(base >= 250 * 1024, "initial region reserved: {base}");
        // Requests inside the pre-carved classes do not grow the arena.
        let hs: Vec<_> = (0..64).map(|_| k.alloc(100).unwrap()).collect();
        assert_eq!(k.footprint(), base, "served from the initial region");
        for h in hs {
            k.free(h).unwrap();
        }
        assert_eq!(k.footprint(), base);
    }

    #[test]
    fn unused_classes_of_the_initial_region_are_misused_memory() {
        // Only one size is ever requested; the other classes' shares are
        // dead weight — the paper's criticism in the 3D-recon comparison.
        let mut k = KingsleyAllocator::with_initial_region(256 * 1024);
        let _ = k.alloc(60).unwrap();
        let live = k.stats().live_block;
        assert!(k.footprint() > 40 * live, "most of the region is idle");
    }
}
