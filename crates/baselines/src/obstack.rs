//! GNU-obstacks-style stack allocator.
//!
//! The custom manager the paper compares against on the 3D-rendering case
//! study "due to its stack-like allocation behaviour in some phases of its
//! execution". Objects bump-allocate into growing chunks; only the most
//! recently allocated live object can actually be popped, so non-LIFO frees
//! are recorded as *dead* but their memory stays resident until everything
//! above them dies too — precisely why "Obstacks cannot exploit its
//! stack-like optimizations in the final phases of the rendering process"
//! and pays a footprint penalty there.

use std::collections::HashMap;

use dmm_core::error::{Error, Result};
use dmm_core::heap::Arena;
use dmm_core::manager::{Allocator, BlockHandle};
use dmm_core::metrics::AllocStats;
use dmm_core::units::{align_up, MIN_ALIGN, POINTER_BYTES, SIZE_FIELD_BYTES};

/// Chunk size, as in GNU obstacks' default `obstack_chunk_size` (4096);
/// objects larger than a chunk get a dedicated, exactly-sized chunk.
const INITIAL_CHUNK: usize = 4096;
/// Per-chunk header (next pointer + limit), as in GNU obstacks.
const CHUNK_HEADER: usize = 2 * POINTER_BYTES + SIZE_FIELD_BYTES;

#[derive(Debug, Clone, Copy)]
struct Object {
    offset: usize,
    len: usize,
    req: usize,
    dead: bool,
}

#[derive(Debug)]
struct Chunk {
    base: usize,
    len: usize,
    bump: usize,
    objects: Vec<Object>,
}

/// Hand-rolled obstack allocator.
///
/// # Examples
///
/// ```
/// use dmm_baselines::ObstackAllocator;
/// use dmm_core::manager::Allocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ob = ObstackAllocator::new();
/// let a = ob.alloc(100)?;
/// let b = ob.alloc(100)?;
/// ob.free(b)?; // LIFO pop: memory reclaimed immediately
/// ob.free(a)?;
/// assert_eq!(ob.footprint(), 0, "all chunks released");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ObstackAllocator {
    arena: Arena,
    chunks: Vec<Chunk>,
    by_offset: HashMap<usize, (usize, usize)>, // offset -> (chunk idx, obj idx)
    next_chunk: usize,
    stats: AllocStats,
}

impl Default for ObstackAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl ObstackAllocator {
    /// A fresh obstack.
    pub fn new() -> Self {
        ObstackAllocator {
            arena: Arena::unbounded(),
            chunks: Vec::new(),
            by_offset: HashMap::new(),
            next_chunk: INITIAL_CHUNK,
            stats: AllocStats::default(),
        }
    }

    fn sync(&mut self) {
        self.stats.set_system(self.arena.brk(), POINTER_BYTES);
    }

    /// Pop trailing dead objects and empty chunks, shrinking the arena.
    fn lazy_pop(&mut self) {
        loop {
            let Some(chunk) = self.chunks.last_mut() else {
                return;
            };
            while let Some(obj) = chunk.objects.last() {
                if !obj.dead {
                    return;
                }
                chunk.bump = obj.offset - chunk.base;
                self.by_offset.remove(&obj.offset);
                chunk.objects.pop();
                self.stats.search_steps += 1;
            }
            if chunk.objects.is_empty() {
                let base = chunk.base;
                self.chunks.pop();
                self.arena.trim(base);
                self.stats.trims += 1;
            } else {
                return;
            }
        }
    }

    /// Bytes held by dead-but-unreclaimable objects (the non-LIFO penalty).
    pub fn trapped_bytes(&self) -> usize {
        self.chunks
            .iter()
            .flat_map(|c| c.objects.iter())
            .filter(|o| o.dead)
            .map(|o| o.len)
            .sum()
    }
}

impl Allocator for ObstackAllocator {
    fn name(&self) -> &str {
        "Obstacks"
    }

    fn alloc(&mut self, req: usize) -> Result<BlockHandle> {
        let req = req.max(1);
        let len = align_up(req, MIN_ALIGN);
        self.stats.search_steps += 1;
        let fits = self
            .chunks
            .last()
            .map(|c| c.bump + len <= c.len)
            .unwrap_or(false);
        if !fits {
            // New chunk: fixed default size; large objects get their own
            // exactly-sized chunk (GNU obstacks behaviour).
            let chunk_len = align_up(self.next_chunk.max(len + CHUNK_HEADER), MIN_ALIGN);
            let base = self.arena.sbrk(chunk_len)?;
            self.stats.sbrk_calls += 1;
            self.chunks.push(Chunk {
                base,
                len: chunk_len,
                bump: CHUNK_HEADER,
                objects: Vec::new(),
            });
        }
        let chunk_idx = self.chunks.len() - 1;
        let chunk = &mut self.chunks[chunk_idx];
        let offset = chunk.base + chunk.bump;
        chunk.bump += len;
        chunk.objects.push(Object {
            offset,
            len,
            req,
            dead: false,
        });
        self.by_offset
            .insert(offset, (chunk_idx, chunk.objects.len() - 1));
        self.stats.on_alloc(req, len);
        self.sync();
        Ok(BlockHandle::new(offset, 0))
    }

    fn free(&mut self, handle: BlockHandle) -> Result<()> {
        let offset = handle.offset();
        let (ci, oi) = self
            .by_offset
            .get(&offset)
            .copied()
            .ok_or(Error::InvalidFree { offset })?;
        let obj = &mut self.chunks[ci].objects[oi];
        if obj.dead {
            return Err(Error::InvalidFree { offset });
        }
        obj.dead = true;
        let (req, len) = (obj.req, obj.len);
        self.stats.on_free(req, len);
        self.stats.search_steps += 1;
        self.lazy_pop();
        self.sync();
        Ok(())
    }

    fn footprint(&self) -> usize {
        self.arena.brk()
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }

    fn reset(&mut self) {
        *self = ObstackAllocator::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_frees_reclaim_immediately() {
        let mut ob = ObstackAllocator::new();
        let hs: Vec<_> = (0..32).map(|_| ob.alloc(100).unwrap()).collect();
        let peak = ob.footprint();
        for h in hs.into_iter().rev() {
            ob.free(h).unwrap();
        }
        assert_eq!(ob.footprint(), 0);
        assert!(ob.stats().trims >= 1);
        assert!(peak > 0);
    }

    #[test]
    fn non_lifo_frees_trap_memory() {
        let mut ob = ObstackAllocator::new();
        let a = ob.alloc(1000).unwrap();
        let b = ob.alloc(1000).unwrap(); // sits above `a`
        ob.free(a).unwrap();
        assert!(ob.trapped_bytes() >= 1000, "a is dead but trapped under b");
        let fp = ob.footprint();
        assert!(fp > 0);
        ob.free(b).unwrap(); // now both pop
        assert_eq!(ob.trapped_bytes(), 0);
        assert_eq!(ob.footprint(), 0);
    }

    #[test]
    fn fixed_chunks_grow_and_release() {
        let mut ob = ObstackAllocator::new();
        let hs: Vec<_> = (0..200).map(|_| ob.alloc(256).unwrap()).collect();
        // 200 x 256 B in 4 KiB chunks: ~13 chunks, low overshoot.
        assert!(ob.stats().sbrk_calls >= 13);
        assert!(ob.footprint() <= 200 * 256 + 16 * 4096 / 2);
        for h in hs.into_iter().rev() {
            ob.free(h).unwrap();
        }
        assert_eq!(ob.footprint(), 0);
    }

    #[test]
    fn oversized_objects_get_their_own_chunk() {
        let mut ob = ObstackAllocator::new();
        let h = ob.alloc(100_000).unwrap();
        assert!(ob.footprint() >= 100_000);
        ob.free(h).unwrap();
        assert_eq!(ob.footprint(), 0);
    }

    #[test]
    fn interleaved_random_frees_eventually_release_everything() {
        let mut ob = ObstackAllocator::new();
        let mut live: Vec<BlockHandle> = Vec::new();
        let mut x: u64 = 0xFEEDFACE;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if live.is_empty() || !x.is_multiple_of(3) {
                live.push(ob.alloc(16 + (x % 500) as usize).unwrap());
            } else {
                let idx = (x as usize) % live.len();
                ob.free(live.swap_remove(idx)).unwrap();
            }
        }
        for h in live {
            ob.free(h).unwrap();
        }
        assert_eq!(ob.stats().live_requested, 0);
        assert_eq!(ob.footprint(), 0, "all dead objects must pop in the end");
        assert_eq!(ob.trapped_bytes(), 0);
    }

    #[test]
    fn stack_phase_beats_random_phase_on_trapped_bytes() {
        // The rendering-case-study effect: stack-like phase leaves nothing
        // trapped; a random-order phase traps plenty at its worst point.
        let mut ob = ObstackAllocator::new();
        let hs: Vec<_> = (0..64).map(|_| ob.alloc(512).unwrap()).collect();
        let mut worst_trapped = 0;
        // Free even indices first (non-LIFO), tracking trapped bytes.
        for h in hs.iter().step_by(2) {
            ob.free(*h).unwrap();
            worst_trapped = worst_trapped.max(ob.trapped_bytes());
        }
        assert!(worst_trapped > 10 * 512);
        for h in hs.iter().skip(1).step_by(2) {
            ob.free(*h).unwrap();
        }
        assert_eq!(ob.footprint(), 0);
    }
}
