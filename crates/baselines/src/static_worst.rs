//! The static worst-case pool — the no-DM strawman of the introduction.
//!
//! "Designing embedded systems for the (static) worst case memory footprint
//! … would lead to a too high overhead in memory footprint": this manager
//! reserves its whole capacity up front, so its footprint is a constant
//! regardless of the live set, and it simply fails when the worst-case
//! estimate is exceeded. The motivation experiment compares it against DM
//! managers on the same traces.

use dmm_core::error::Result;
use dmm_core::manager::{Allocator, BlockHandle, PolicyAllocator};
use dmm_core::metrics::AllocStats;
use dmm_core::space::presets;

/// A statically pre-reserved memory pool.
///
/// Internally the pool is managed by a best-effort allocator (splitting and
/// coalescing), but the *reported footprint never drops below the static
/// reservation* — the whole point of the comparison.
///
/// # Examples
///
/// ```
/// use dmm_baselines::StaticWorstCase;
/// use dmm_core::manager::Allocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut s = StaticWorstCase::with_capacity(1 << 20);
/// assert_eq!(s.footprint(), 1 << 20, "reserved before any allocation");
/// let h = s.alloc(100)?;
/// assert_eq!(s.footprint(), 1 << 20, "constant footprint");
/// s.free(h)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StaticWorstCase {
    inner: PolicyAllocator,
    capacity: usize,
    stats: AllocStats,
}

impl StaticWorstCase {
    /// Reserve `capacity` bytes up front.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a static pool needs a capacity");
        let mut cfg = presets::drr_paper();
        cfg.name = "static pool engine".into();
        cfg.params.arena_limit = Some(capacity);
        cfg.params.trim_threshold = None; // the reservation never shrinks
        let inner = PolicyAllocator::new(cfg).expect("static pool config is valid");
        let mut s = StaticWorstCase {
            inner,
            capacity,
            stats: AllocStats::default(),
        };
        s.sync();
        s
    }

    /// The static reservation in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn sync(&mut self) {
        let inner = self.inner.stats().clone();
        self.stats = inner;
        // Footprint is the full reservation, always.
        self.stats.system = self.capacity;
        self.stats.peak_footprint = self.capacity;
    }
}

impl Allocator for StaticWorstCase {
    fn name(&self) -> &str {
        "static worst-case"
    }

    fn alloc(&mut self, req: usize) -> Result<BlockHandle> {
        let h = self.inner.alloc(req)?;
        self.sync();
        Ok(h)
    }

    fn free(&mut self, handle: BlockHandle) -> Result<()> {
        self.inner.free(handle)?;
        self.sync();
        Ok(())
    }

    fn footprint(&self) -> usize {
        self.capacity
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_core::error::Error;

    #[test]
    fn footprint_is_constant() {
        let mut s = StaticWorstCase::with_capacity(64 * 1024);
        assert_eq!(s.footprint(), 64 * 1024);
        let hs: Vec<_> = (0..32).map(|_| s.alloc(512).unwrap()).collect();
        assert_eq!(s.footprint(), 64 * 1024);
        for h in hs {
            s.free(h).unwrap();
        }
        assert_eq!(s.footprint(), 64 * 1024);
        assert_eq!(s.stats().peak_footprint, 64 * 1024);
    }

    #[test]
    fn exceeding_the_worst_case_fails() {
        let mut s = StaticWorstCase::with_capacity(8 * 1024);
        let _a = s.alloc(7000).unwrap();
        let err = s.alloc(2000).unwrap_err();
        assert!(matches!(err, Error::OutOfMemory { .. }));
    }

    #[test]
    fn memory_recycles_inside_the_pool() {
        let mut s = StaticWorstCase::with_capacity(8 * 1024);
        for _ in 0..100 {
            let h = s.alloc(6000).unwrap();
            s.free(h).unwrap();
        }
        assert_eq!(s.stats().live_requested, 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = StaticWorstCase::with_capacity(0);
    }
}
