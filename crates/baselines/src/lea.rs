//! A Doug Lea (`dlmalloc` 2.x) style allocator.
//!
//! The manager underlying Linux allocators, simplified to the mechanisms
//! that drive its footprint shape in the paper's Figure 5:
//!
//! - boundary tags (header + footer, 8 bytes per block) enable bidirectional
//!   coalescing;
//! - exact-spaced **small bins** (< 512 bytes) and one size-ordered
//!   **large bin**;
//! - an **unsorted list**: frees park there first, and only an allocation
//!   miss consolidates them with their neighbours ("Lea coalesces seldom");
//! - splitting with a small-remainder floor;
//! - trimming only when the top free block exceeds 128 KiB — so Lea's
//!   footprint plateaus where the paper's custom manager tracks demand.

use std::collections::{BTreeMap, HashMap, VecDeque};

use dmm_core::error::{Error, Result};
use dmm_core::heap::{Arena, Block, BlockMap, BlockState, Span};
use dmm_core::manager::{Allocator, BlockHandle};
use dmm_core::metrics::AllocStats;
use dmm_core::units::{align_up, MIN_ALIGN, MIN_BLOCK, POINTER_BYTES};

/// Header + footer boundary tags.
const TAGS: usize = 8;
/// Requests below this use the exact small bins.
const SMALL_LIMIT: usize = 512;
/// Spacing of the small bins.
const SMALL_SPACING: usize = 8;
/// Top free block above this is returned to the system.
const TRIM_THRESHOLD: usize = 128 * 1024;
/// Smallest split remainder kept as a block.
const SPLIT_FLOOR: usize = 32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bin {
    Small(usize),
    Large,
    Unsorted,
}

/// Hand-rolled Lea-style allocator.
///
/// # Examples
///
/// ```
/// use dmm_baselines::LeaAllocator;
/// use dmm_core::manager::Allocator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lea = LeaAllocator::new();
/// let h = lea.alloc(300)?;
/// lea.free(h)?;
/// // The freed block parks in the unsorted list; nothing was merged yet.
/// assert_eq!(lea.stats().coalesces, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LeaAllocator {
    arena: Arena,
    blocks: BlockMap,
    small_bins: HashMap<usize, VecDeque<usize>>,
    large_bin: BTreeMap<(usize, usize), ()>,
    unsorted: VecDeque<usize>,
    bin_of: HashMap<usize, Bin>,
    stats: AllocStats,
}

impl Default for LeaAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl LeaAllocator {
    /// A fresh allocator with an unbounded arena.
    pub fn new() -> Self {
        LeaAllocator {
            arena: Arena::unbounded(),
            blocks: BlockMap::new(),
            small_bins: HashMap::new(),
            large_bin: BTreeMap::new(),
            unsorted: VecDeque::new(),
            bin_of: HashMap::new(),
            stats: AllocStats::default(),
        }
    }

    fn block_len_for(req: usize) -> usize {
        align_up(req + TAGS, MIN_ALIGN).max(MIN_BLOCK)
    }

    fn small_bin_size(len: usize) -> Option<usize> {
        if len < SMALL_LIMIT {
            Some(align_up(len, SMALL_SPACING))
        } else {
            None
        }
    }

    fn static_overhead(&self) -> usize {
        // Bin head pointers: the classic static bin array (64 small bins +
        // one large bin + the unsorted list head).
        (SMALL_LIMIT / SMALL_SPACING + 2) * POINTER_BYTES
    }

    fn sync(&mut self) {
        self.stats
            .set_system(self.arena.brk(), self.static_overhead());
    }

    fn bin_insert(&mut self, span: Span) {
        let bin = match Self::small_bin_size(span.len) {
            Some(_) if span.len < SMALL_LIMIT => Bin::Small(span.len),
            _ => Bin::Large,
        };
        match bin {
            Bin::Small(sz) => self
                .small_bins
                .entry(sz)
                .or_default()
                .push_front(span.offset),
            Bin::Large => {
                self.large_bin.insert((span.len, span.offset), ());
            }
            Bin::Unsorted => unreachable!(),
        }
        self.bin_of.insert(span.offset, bin);
        self.stats.search_steps += 1;
    }

    fn unsorted_insert(&mut self, span: Span) {
        self.unsorted.push_front(span.offset);
        self.bin_of.insert(span.offset, Bin::Unsorted);
        self.stats.search_steps += 1;
    }

    fn bin_remove(&mut self, offset: usize) {
        let Some(bin) = self.bin_of.remove(&offset) else {
            return;
        };
        self.stats.search_steps += 1;
        match bin {
            Bin::Small(sz) => {
                if let Some(q) = self.small_bins.get_mut(&sz) {
                    if let Some(pos) = q.iter().position(|&o| o == offset) {
                        q.remove(pos);
                    }
                }
            }
            Bin::Large => {
                let len = self
                    .blocks
                    .get(offset)
                    .expect("binned block exists")
                    .span
                    .len;
                self.large_bin.remove(&(len, offset));
            }
            Bin::Unsorted => {
                if let Some(pos) = self.unsorted.iter().position(|&o| o == offset) {
                    self.unsorted.remove(pos);
                }
            }
        }
    }

    /// Merge the free block at `offset` with free neighbours (removing them
    /// from their bins) and return the merged span, left unbinned.
    fn coalesce(&mut self, offset: usize) -> Span {
        let mut span = self.blocks.get(offset).expect("block exists").span;
        while let Some(next) = self.blocks.next_of(span.offset).copied() {
            if !next.is_free() {
                break;
            }
            self.stats.search_steps += 1;
            self.bin_remove(next.span.offset);
            self.blocks.remove(next.span.offset);
            span = Span::new(span.offset, span.len + next.span.len);
            self.blocks.get_mut(span.offset).expect("exists").span = span;
            self.stats.coalesces += 1;
        }
        while let Some(prev) = self.blocks.prev_of(span.offset).copied() {
            if !prev.is_free() || prev.span.end() != span.offset {
                break;
            }
            self.stats.search_steps += 1; // footer makes this O(1)
            self.bin_remove(prev.span.offset);
            self.blocks.remove(span.offset);
            span = Span::new(prev.span.offset, prev.span.len + span.len);
            self.blocks.get_mut(span.offset).expect("exists").span = span;
            self.stats.coalesces += 1;
        }
        span
    }

    /// Consolidate the unsorted list into the proper bins, merging
    /// neighbours — dlmalloc's malloc-time lazy coalescing.
    fn consolidate(&mut self) {
        while let Some(offset) = self.unsorted.pop_back() {
            self.stats.search_steps += 1;
            self.bin_of.remove(&offset);
            if self
                .blocks
                .get(offset)
                .map(|b| !b.is_free())
                .unwrap_or(true)
            {
                continue; // already absorbed by an earlier merge
            }
            let span = self.coalesce(offset);
            self.bin_insert(span);
        }
    }

    /// Find a block of at least `len` bytes: exact small bin, then best fit
    /// over the large bin.
    fn search_bins(&mut self, len: usize) -> Option<Span> {
        if let Some(sz) = Self::small_bin_size(len) {
            // Exact bin and the next few spacings up, like dlmalloc's
            // small-bin scan.
            let mut probe = sz;
            while probe < SMALL_LIMIT {
                self.stats.search_steps += 1;
                if let Some(q) = self.small_bins.get_mut(&probe) {
                    if let Some(offset) = q.pop_front() {
                        self.bin_of.remove(&offset);
                        return Some(Span::new(offset, probe));
                    }
                }
                probe += SMALL_SPACING;
            }
        }
        self.stats.search_steps += 1;
        if let Some((&(l, o), ())) = self.large_bin.range((len, 0)..).next() {
            self.large_bin.remove(&(l, o));
            self.bin_of.remove(&o);
            return Some(Span::new(o, l));
        }
        None
    }

    /// Split `span` down to `need` if the remainder is worth keeping.
    fn split(&mut self, span: Span, need: usize) -> usize {
        let remainder = span.len - need;
        if remainder < SPLIT_FLOOR.max(MIN_BLOCK) {
            return span.len;
        }
        self.stats.splits += 1;
        self.stats.search_steps += 2;
        self.blocks.get_mut(span.offset).expect("exists").span = Span::new(span.offset, need);
        let rem = Span::new(span.offset + need, remainder);
        self.blocks.insert(Block::free(rem, 0));
        self.bin_insert(rem);
        need
    }

    fn trim_top(&mut self) {
        while let Some(top) = self.blocks.top().copied() {
            if !top.is_free() || top.span.len < TRIM_THRESHOLD {
                break;
            }
            self.bin_remove(top.span.offset);
            self.blocks.remove(top.span.offset);
            self.arena.trim(top.span.offset);
            self.stats.trims += 1;
        }
    }

    /// Tiling/bin consistency check for tests.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        if let Some(e) = self.blocks.check_tiling(self.arena.brk()) {
            return Err(e);
        }
        for (&offset, _) in self.bin_of.iter() {
            match self.blocks.get(offset) {
                Some(b) if b.is_free() => {}
                _ => return Err(format!("binned offset {offset} is not a free block")),
            }
        }
        Ok(())
    }
}

impl Allocator for LeaAllocator {
    fn name(&self) -> &str {
        "Lea"
    }

    fn alloc(&mut self, req: usize) -> Result<BlockHandle> {
        let req = req.max(1);
        let need = Self::block_len_for(req);

        let mut found = self.search_bins(need);
        if found.is_none() && !self.unsorted.is_empty() {
            self.stats.failed_fits += 1;
            self.consolidate();
            found = self.search_bins(need);
        }
        let span = match found {
            Some(s) => s,
            None => {
                // Extend or create the top block.
                self.stats.failed_fits += 1;
                if let Some(top) = self.blocks.top().copied() {
                    if top.is_free() && top.span.len < need {
                        let grow = need - top.span.len;
                        self.arena.sbrk(grow)?;
                        self.stats.sbrk_calls += 1;
                        self.bin_remove(top.span.offset);
                        let span = Span::new(top.span.offset, need);
                        self.blocks.get_mut(top.span.offset).expect("exists").span = span;
                        span
                    } else {
                        let base = self.arena.sbrk(need)?;
                        self.stats.sbrk_calls += 1;
                        self.blocks.insert(Block::free(Span::new(base, need), 0));
                        Span::new(base, need)
                    }
                } else {
                    let base = self.arena.sbrk(need)?;
                    self.stats.sbrk_calls += 1;
                    self.blocks.insert(Block::free(Span::new(base, need), 0));
                    Span::new(base, need)
                }
            }
        };

        let kept = self.split(span, need);
        let blk = self.blocks.get_mut(span.offset).expect("exists");
        blk.state = BlockState::Used;
        blk.requested = req;
        self.stats.on_alloc(req, kept);
        self.sync();
        Ok(BlockHandle::new(span.offset, 0))
    }

    fn free(&mut self, handle: BlockHandle) -> Result<()> {
        let offset = handle.offset();
        let (req, len) = match self.blocks.get(offset) {
            Some(b) if !b.is_free() => (b.requested, b.span.len),
            _ => return Err(Error::InvalidFree { offset }),
        };
        self.stats.on_free(req, len);
        {
            let blk = self.blocks.get_mut(offset).expect("exists");
            blk.state = BlockState::Free;
            blk.requested = 0;
        }
        // dlmalloc consolidates frees bordering the top immediately (and
        // may then trim); everything else parks in the unsorted list.
        let borders_top = self
            .blocks
            .next_of(offset)
            .map(|n| !n.is_free())
            .unwrap_or(true)
            && self.blocks.top().map(|t| t.span.offset == offset).unwrap_or(false);
        if borders_top {
            let span = self.coalesce(offset);
            self.bin_insert(span);
            self.trim_top();
        } else {
            self.unsorted_insert(Span::new(offset, len));
        }
        self.sync();
        Ok(())
    }

    fn footprint(&self) -> usize {
        self.stats.system
    }

    fn stats(&self) -> &AllocStats {
        &self.stats
    }

    fn reset(&mut self) {
        *self = LeaAllocator::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_tags_cost_eight_bytes() {
        let mut lea = LeaAllocator::new();
        let _ = lea.alloc(120).unwrap(); // 120 + 8 -> 128
        assert_eq!(lea.stats().live_block, 128);
    }

    #[test]
    fn frees_park_in_unsorted_until_a_miss() {
        let mut lea = LeaAllocator::new();
        let a = lea.alloc(100).unwrap();
        let b = lea.alloc(100).unwrap();
        let _guard = lea.alloc(100).unwrap(); // keeps a/b off the top
        lea.free(a).unwrap();
        lea.free(b).unwrap();
        assert_eq!(lea.stats().coalesces, 0);
        assert_eq!(lea.unsorted.len(), 2);
        // A request that no parked block satisfies triggers consolidation:
        // a and b are adjacent, so they merge.
        let big = lea.alloc(180).unwrap();
        assert!(lea.stats().coalesces >= 1);
        lea.free(big).unwrap();
        lea.check_invariants().unwrap();
    }

    #[test]
    fn small_bins_reuse_exact_sizes() {
        let mut lea = LeaAllocator::new();
        let a = lea.alloc(56).unwrap(); // 64-byte block
        let _guard = lea.alloc(56).unwrap();
        lea.free(a).unwrap();
        let brk = lea.footprint();
        // Force consolidation so the parked block lands in its small bin...
        // (an exact-size request can take it straight from unsorted
        // consolidation's bin placement)
        let c = lea.alloc(56).unwrap();
        assert_eq!(c.offset(), a.offset(), "exact small-bin reuse");
        assert_eq!(lea.footprint(), brk, "no growth for a binned size");
        lea.check_invariants().unwrap();
    }

    #[test]
    fn splits_large_blocks_with_floor() {
        let mut lea = LeaAllocator::new();
        let big = lea.alloc(2048).unwrap();
        let _guard = lea.alloc(64).unwrap();
        lea.free(big).unwrap();
        let _small = lea.alloc(500).unwrap(); // miss -> consolidate -> split
        assert!(lea.stats().splits >= 1);
        lea.check_invariants().unwrap();
    }

    #[test]
    fn trims_only_above_threshold() {
        let mut lea = LeaAllocator::new();
        // A medium block frees straight into the top but stays resident.
        let m = lea.alloc(64 * 1024).unwrap();
        lea.free(m).unwrap();
        assert_eq!(lea.stats().trims, 0, "64 KiB top is below the threshold");
        assert!(lea.footprint() >= 64 * 1024);
        // A huge block crosses the 128 KiB threshold and is returned.
        let h = lea.alloc(256 * 1024).unwrap();
        lea.free(h).unwrap();
        assert!(lea.stats().trims >= 1);
        lea.check_invariants().unwrap();
    }

    #[test]
    fn footprint_plateaus_with_parked_free_lists() {
        // The Figure 5 shape: after a burst is freed (off the top), Lea's
        // footprint stays at the plateau.
        let mut lea = LeaAllocator::new();
        let hs: Vec<_> = (0..64).map(|_| lea.alloc(500).unwrap()).collect();
        let guard = lea.alloc(16).unwrap(); // pins the top
        let peak = lea.footprint();
        for h in hs {
            lea.free(h).unwrap();
        }
        assert_eq!(lea.footprint(), peak, "freed burst parks, no shrink");
        lea.free(guard).unwrap();
        lea.check_invariants().unwrap();
    }

    #[test]
    fn interleaved_stress_keeps_invariants() {
        let mut lea = LeaAllocator::new();
        let mut live = Vec::new();
        let mut x: u64 = 0xDEADBEEFCAFE;
        for i in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if live.is_empty() || !x.is_multiple_of(3) {
                live.push(lea.alloc(8 + (x % 3000) as usize).unwrap());
            } else {
                let idx = (x as usize / 5) % live.len();
                lea.free(live.swap_remove(idx)).unwrap();
            }
            if i % 750 == 0 {
                lea.check_invariants().unwrap();
            }
        }
        for h in live {
            lea.free(h).unwrap();
        }
        lea.check_invariants().unwrap();
        assert_eq!(lea.stats().live_requested, 0);
    }
}
