//! # dmm-baselines
//!
//! Hand-rolled re-implementations of the comparator DM managers of the
//! paper's Section 5, on the same simulated heap substrate as
//! [`dmm_core`]'s policy allocator:
//!
//! - [`KingsleyAllocator`] — the power-of-two segregated-freelist manager
//!   underlying Windows-family allocators: fast, never splits, never
//!   coalesces, never returns memory;
//! - [`LeaAllocator`] — the Doug Lea `dlmalloc`-style manager underlying
//!   Linux allocators: boundary tags, exact small bins, a sorted large bin,
//!   lazy coalescing and high-threshold trimming;
//! - [`RegionAllocator`] — the fixed-block-size region manager of recent
//!   embedded real-time OSs;
//! - [`ObstackAllocator`] — GNU obstacks, the stack-like custom manager;
//! - [`StaticWorstCase`] — a statically pre-reserved pool, the no-DM
//!   strawman of the introduction.
//!
//! All implement [`dmm_core::manager::Allocator`], so the paper's
//! experiments replay the *same trace* through every manager.
//!
//! The `dmm-core` presets [`dmm_core::space::presets::kingsley_like`] and
//! [`lea_like`](dmm_core::space::presets::lea_like) recreate the first two
//! as points of the search space; integration tests cross-check the
//! hand-rolled and preset variants against each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod kingsley;
mod lea;
mod obstack;
mod region;
mod static_worst;

pub use kingsley::KingsleyAllocator;
pub use lea::LeaAllocator;
pub use obstack::ObstackAllocator;
pub use region::RegionAllocator;
pub use static_worst::StaticWorstCase;

use dmm_core::manager::Allocator;

/// The paper's comparator set, ready to replay a trace.
///
/// `Regions` sizes its classes coarsely and `StaticWorstCase` needs a
/// capacity estimate, so both take workload hints; this constructor uses
/// the defaults the case-study benches use.
pub fn all_baselines() -> Vec<Box<dyn Allocator + Send>> {
    vec![
        Box::new(KingsleyAllocator::new()),
        Box::new(LeaAllocator::new()),
        Box::new(RegionAllocator::with_default_regions()),
        Box::new(ObstackAllocator::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_names_are_distinct() {
        let names: std::collections::HashSet<String> = all_baselines()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn all_baselines_serve_a_simple_burst() {
        for mut b in all_baselines() {
            let hs: Vec<_> = (1..=32).map(|i| b.alloc(i * 24).unwrap()).collect();
            assert!(b.footprint() > 0, "{}", b.name());
            for h in hs {
                b.free(h).unwrap();
            }
            assert_eq!(b.stats().live_requested, 0, "{}", b.name());
            assert_eq!(b.stats().allocs, 32, "{}", b.name());
            assert_eq!(b.stats().frees, 32, "{}", b.name());
        }
    }

    #[test]
    fn all_baselines_reject_double_free() {
        for mut b in all_baselines() {
            let h = b.alloc(64).unwrap();
            b.free(h).unwrap();
            assert!(b.free(h).is_err(), "{} accepted a double free", b.name());
        }
    }

    #[test]
    fn all_baselines_reset() {
        for mut b in all_baselines() {
            let _ = b.alloc(100).unwrap();
            b.reset();
            assert_eq!(b.stats().allocs, 0, "{}", b.name());
            let h = b.alloc(100).unwrap();
            b.free(h).unwrap();
        }
    }
}
