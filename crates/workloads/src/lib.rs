//! # dmm-workloads
//!
//! The paper's three case studies — DRR scheduling, 3D image
//! reconstruction, 3D scalable-mesh rendering — packaged behind one
//! [`Workload`] interface, plus synthetic micro-workloads for tests and
//! ablations.
//!
//! A workload runs against any [`Allocator`]; [`Workload::record`] captures
//! its allocation behaviour as a [`Trace`] through the ideal recorder, so
//! every manager is evaluated on *identical* inputs (the paper's averaged
//! 10-simulation protocol becomes 10 seeds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod synthetic;

use dmm_core::error::Result;
use dmm_core::manager::Allocator;
use dmm_core::trace::{RecordingAllocator, Trace};
use dmm_mesh::{run_rendering, RenderConfig};
use dmm_netbench::{run_drr, DrrConfig};
use dmm_trafficgen::{Packet, TrafficConfig, TrafficGenerator};
use dmm_vision::{run_reconstruction, ReconConfig};

/// An application whose dynamic-memory behaviour is under study.
pub trait Workload: std::fmt::Debug {
    /// Display name (appears in tables).
    fn name(&self) -> &str;

    /// Run the whole application against `alloc`.
    ///
    /// # Errors
    ///
    /// Propagates allocator failures.
    fn run(&self, alloc: &mut dyn Allocator) -> Result<()>;

    /// Record the application's allocation trace.
    ///
    /// # Errors
    ///
    /// Propagates run failures.
    fn record(&self) -> Result<Trace> {
        let mut rec = RecordingAllocator::new();
        self.run(&mut rec)?;
        rec.finish()
    }
}

/// The Deficit-Round-Robin scheduler case study (Section 5, first study).
#[derive(Debug, Clone)]
pub struct DrrWorkload {
    name: String,
    packets: Vec<Packet>,
    flows: u32,
    drr: DrrConfig,
}

impl DrrWorkload {
    /// Paper-scale run: 10 Mbit/s bursty traffic against a 12 Mbit/s link.
    ///
    /// The link outruns the mean rate but not the 4× bursts, so backlog
    /// builds and drains repeatedly — the transient queue peaks whose
    /// footprint Figure 5 plots (a slower-than-mean link would just grow
    /// the queue monotonically and flatten every manager to the same
    /// peak).
    pub fn case_study(seed: u64) -> Self {
        Self::with_configs(
            seed,
            TrafficConfig {
                duration_ms: 2_000,
                ..TrafficConfig::drr_case_study(seed)
            },
            DrrConfig {
                quantum: 1500,
                link_rate_bps: 12_000_000,
            },
        )
    }

    /// Test-scale run (fast in debug builds).
    pub fn quick(seed: u64) -> Self {
        Self::with_configs(
            seed,
            TrafficConfig {
                duration_ms: 80,
                ..TrafficConfig::drr_case_study(seed)
            },
            DrrConfig {
                quantum: 1500,
                link_rate_bps: 12_000_000,
            },
        )
    }

    /// Fully custom traffic and scheduler configuration.
    pub fn with_configs(seed: u64, traffic: TrafficConfig, drr: DrrConfig) -> Self {
        let flows = traffic.flows;
        let packets: Vec<Packet> = TrafficGenerator::new(traffic).collect();
        DrrWorkload {
            name: format!("DRR scheduler (seed {seed})"),
            packets,
            flows,
            drr,
        }
    }

    /// Number of packets in the pre-generated stream.
    pub fn packet_count(&self) -> usize {
        self.packets.len()
    }
}

impl Workload for DrrWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, alloc: &mut dyn Allocator) -> Result<()> {
        run_drr(alloc, &self.packets, self.flows, self.drr.clone())?;
        Ok(())
    }
}

/// The 3D image-reconstruction case study (Section 5, second study).
#[derive(Debug, Clone)]
pub struct ReconWorkload {
    name: String,
    cfg: ReconConfig,
}

impl ReconWorkload {
    /// Paper-scale run: 640×480 frames.
    pub fn case_study(seed: u64) -> Self {
        ReconWorkload {
            name: format!("3D image reconstruction (seed {seed})"),
            cfg: ReconConfig {
                seed,
                ..ReconConfig::default()
            },
        }
    }

    /// Test-scale run.
    pub fn quick(seed: u64) -> Self {
        ReconWorkload {
            name: format!("3D image reconstruction (seed {seed})"),
            cfg: ReconConfig::small(seed),
        }
    }
}

impl Workload for ReconWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, alloc: &mut dyn Allocator) -> Result<()> {
        run_reconstruction(alloc, &self.cfg)?;
        Ok(())
    }
}

/// The 3D scalable-mesh rendering case study (Section 5, third study).
#[derive(Debug, Clone)]
pub struct RenderWorkload {
    name: String,
    cfg: RenderConfig,
}

impl RenderWorkload {
    /// Paper-scale run.
    pub fn case_study(seed: u64) -> Self {
        RenderWorkload {
            name: format!("3D scalable rendering (seed {seed})"),
            cfg: RenderConfig {
                seed,
                ..RenderConfig::default()
            },
        }
    }

    /// Test-scale run.
    pub fn quick(seed: u64) -> Self {
        RenderWorkload {
            name: format!("3D scalable rendering (seed {seed})"),
            cfg: RenderConfig::small(seed),
        }
    }
}

impl Workload for RenderWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, alloc: &mut dyn Allocator) -> Result<()> {
        run_rendering(alloc, &self.cfg)?;
        Ok(())
    }
}

/// The three case studies at paper scale, for a given seed.
pub fn case_studies(seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(DrrWorkload::case_study(seed)),
        Box::new(ReconWorkload::case_study(seed)),
        Box::new(RenderWorkload::case_study(seed)),
    ]
}

/// The three case studies at test scale.
pub fn quick_studies(seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(DrrWorkload::quick(seed)),
        Box::new(ReconWorkload::quick(seed)),
        Box::new(RenderWorkload::quick(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_core::manager::PolicyAllocator;
    use dmm_core::space::presets;

    #[test]
    fn every_quick_study_records_a_balanced_trace() {
        for w in quick_studies(1) {
            let trace = w.record().unwrap();
            assert!(!trace.is_empty(), "{}", w.name());
            assert_eq!(
                trace.alloc_count(),
                trace.free_count(),
                "{} leaks",
                w.name()
            );
            assert!(trace.peak_live_requested() > 0);
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        for (a, b) in quick_studies(3).iter().zip(quick_studies(3).iter()) {
            assert_eq!(
                a.record().unwrap(),
                b.record().unwrap(),
                "{} not deterministic",
                a.name()
            );
        }
    }

    #[test]
    fn different_seeds_produce_different_traces() {
        let a = DrrWorkload::quick(1).record().unwrap();
        let b = DrrWorkload::quick(2).record().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn workloads_run_directly_on_managers() {
        for w in quick_studies(2) {
            let mut m = PolicyAllocator::new(presets::drr_paper()).unwrap();
            w.run(&mut m).unwrap();
            m.check_invariants()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert_eq!(m.stats().live_requested, 0, "{}", w.name());
        }
    }

    #[test]
    fn drr_packets_are_pregenerated_and_reused() {
        let w = DrrWorkload::quick(5);
        assert!(w.packet_count() > 10);
        let t1 = w.record().unwrap();
        let t2 = w.record().unwrap();
        assert_eq!(t1, t2);
    }
}
