//! Synthetic micro-workloads: small, targeted traces for unit tests,
//! property tests and policy ablations.
//!
//! Each generator is deterministic per seed and returns a validated
//! [`Trace`] directly (no application loop).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dmm_core::trace::{Trace, TraceBuilder, TraceShard};

/// `n` allocations of a single `size`, freed FIFO afterwards.
pub fn uniform(n: usize, size: usize) -> Trace {
    let mut b = Trace::builder();
    let ids: Vec<u64> = (0..n).map(|_| b.alloc(size)).collect();
    for id in ids {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Alternating small/large allocations with interleaved lifetimes — the
/// mixed-size pattern that punishes fixed-class managers.
pub fn bimodal(seed: u64, n: usize, small: usize, large: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    let mut live: Vec<u64> = Vec::new();
    for i in 0..n {
        let size = if i % 2 == 0 { small } else { large };
        live.push(b.alloc(size));
        if live.len() > 8 && rng.gen_bool(0.5) {
            let idx = rng.gen_range(0..live.len());
            b.free(live.swap_remove(idx));
        }
    }
    for id in live {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Pure LIFO (stack-like) behaviour — the pattern Obstacks exploits.
pub fn stack_like(depth: usize, size: usize) -> Trace {
    let mut b = Trace::builder();
    let ids: Vec<u64> = (0..depth).map(|i| b.alloc(size + (i % 5) * 16)).collect();
    for id in ids.into_iter().rev() {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Ramp up to a plateau, hold, then ramp down — the Figure 5 DRR shape.
pub fn plateau(seed: u64, peak: usize, size: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..peak {
        live.push(b.alloc(size + rng.gen_range(0..size)));
    }
    // Hold with churn.
    for _ in 0..peak {
        let idx = rng.gen_range(0..live.len());
        b.free(live.swap_remove(idx));
        live.push(b.alloc(size + rng.gen_range(0..size)));
    }
    for id in live {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Highly variable sizes, random frees — the fragmentation-adversarial
/// pattern of the DRR case study.
pub fn fragmenting(seed: u64, n: usize, max_size: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..n {
        if live.is_empty() || rng.gen_bool(0.6) {
            live.push(b.alloc(rng.gen_range(16..=max_size.max(17))));
        } else {
            let idx = rng.gen_range(0..live.len());
            b.free(live.swap_remove(idx));
        }
    }
    for id in live {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Two-phase trace: a stack-like phase 0 followed by a fragmenting
/// phase 1 — the rendering case study in miniature.
pub fn two_phase(seed: u64, n: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    b.phase(0);
    let ids: Vec<u64> = (0..n).map(|i| b.alloc(64 + (i % 7) * 32)).collect();
    for id in ids.into_iter().rev() {
        b.free(id);
    }
    b.phase(1);
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..n {
        if live.is_empty() || rng.gen_bool(0.55) {
            live.push(b.alloc(rng.gen_range(100..4000)));
        } else {
            let idx = rng.gen_range(0..live.len());
            b.free(live.swap_remove(idx));
        }
    }
    for id in live {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// One lifetime-closed churn window written into `b`: ~`events` mixed
/// alloc/free events followed by a full drain of the survivors.
///
/// Both large-trace entry points share this body, so the whole trace of
/// [`large_churn`] and the shard stream of [`large_churn_shards`] carry
/// byte-identical size/order behaviour (only object ids differ).
fn churn_window(rng: &mut StdRng, b: &mut TraceBuilder, events: usize) {
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..events {
        if live.is_empty() || rng.gen_bool(0.58) {
            live.push(b.alloc(rng.gen_range(16..=1600)));
        } else {
            let idx = rng.gen_range(0..live.len());
            b.free(live.swap_remove(idx));
        }
    }
    for id in live {
        b.free(id);
    }
}

/// A large churn trace of `windows` lifetime-closed windows of
/// ~`events_per_window` events each, materialised whole. Prefer
/// [`large_churn_shards`] when the trace would not fit comfortably in
/// memory — it generates the identical behaviour shard by shard.
pub fn large_churn(seed: u64, windows: usize, events_per_window: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    for _ in 0..windows.max(1) {
        churn_window(&mut rng, &mut b, events_per_window);
    }
    b.finish().expect("generator produces valid traces")
}

/// The same behaviour as [`large_churn`], yielded as a stream of
/// lifetime-closed [`TraceShard`]s: at no point is more than one window's
/// events resident, so arbitrarily long traces can be explored on a fixed
/// memory budget (`Methodology::explore_shard_stream`). Deterministic per
/// seed, so a second pass over a fresh iterator replays identically.
pub fn large_churn_shards(
    seed: u64,
    windows: usize,
    events_per_window: usize,
) -> impl Iterator<Item = TraceShard> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..windows.max(1)).map(move |i| {
        let mut b = Trace::builder();
        churn_window(&mut rng, &mut b, events_per_window);
        TraceShard::closed(i, b.finish().expect("generator produces valid traces"))
    })
}

/// One lifetime-closed adversarial window written into `b` (~`6 × pairs`
/// events), crafted to defeat address-ordered fit policies:
///
/// 1. a dense run of `2 × pairs` equal small blocks is laid down;
/// 2. every *other* block is freed — the holes are never adjacent, so no
///    amount of coalescing can rebuild a larger block from them;
/// 3. `pairs` requests arrive at just over twice the hole size — FirstFit
///    and BestFit walk the whole free list, fit nothing, and must grow
///    the heap while the hole bytes sit stranded;
/// 4. the window drains completely (shard-friendly).
///
/// Both entry points share this body, so [`adversarial_fragmentation`]
/// and [`adversarial_fragmentation_shards`] carry byte-identical
/// size/order behaviour (only object ids differ).
fn adversarial_window(rng: &mut StdRng, b: &mut TraceBuilder, pairs: usize) {
    let small = 24 + rng.gen_range(0..6usize) * 8;
    let run: Vec<u64> = (0..pairs.max(1) * 2).map(|_| b.alloc(small)).collect();
    let mut survivors = Vec::with_capacity(pairs.max(1));
    for (i, id) in run.into_iter().enumerate() {
        if i % 2 == 0 {
            b.free(id);
        } else {
            survivors.push(id);
        }
    }
    let big: Vec<u64> = (0..pairs.max(1)).map(|_| b.alloc(small * 2 + 8)).collect();
    for id in survivors {
        b.free(id);
    }
    for id in big {
        b.free(id);
    }
}

/// An adversarial fragmentation trace of `windows` lifetime-closed
/// [`adversarial_window`]s, materialised whole: the alloc/free sequence
/// is crafted so FirstFit/BestFit strand half of every window's small
/// bytes as unusable holes at the moment demand peaks. Deterministic per
/// seed; prefer [`adversarial_fragmentation_shards`] for streaming.
pub fn adversarial_fragmentation(seed: u64, windows: usize, pairs_per_window: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    for _ in 0..windows.max(1) {
        adversarial_window(&mut rng, &mut b, pairs_per_window);
    }
    b.finish().expect("generator produces valid traces")
}

/// The same behaviour as [`adversarial_fragmentation`], yielded as a
/// stream of lifetime-closed [`TraceShard`]s — one window of events
/// resident at a time, deterministic per seed.
pub fn adversarial_fragmentation_shards(
    seed: u64,
    windows: usize,
    pairs_per_window: usize,
) -> impl Iterator<Item = TraceShard> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..windows.max(1)).map(move |i| {
        let mut b = Trace::builder();
        adversarial_window(&mut rng, &mut b, pairs_per_window);
        TraceShard::closed(i, b.finish().expect("generator produces valid traces"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_core::profile::Profile;

    #[test]
    fn all_generators_balance_allocs_and_frees() {
        let traces = [
            uniform(50, 64),
            bimodal(1, 100, 32, 2048),
            stack_like(40, 64),
            plateau(2, 60, 256),
            fragmenting(3, 200, 1500),
            two_phase(4, 50),
        ];
        for t in traces {
            assert_eq!(t.alloc_count(), t.free_count());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(fragmenting(9, 100, 500), fragmenting(9, 100, 500));
        assert_ne!(fragmenting(9, 100, 500), fragmenting(10, 100, 500));
    }

    #[test]
    fn stack_like_profile_detects_lifo() {
        let p = Profile::of(&stack_like(30, 64));
        assert!(p.phases[0].stack_like);
        let p = Profile::of(&fragmenting(5, 200, 800));
        assert!(!p.phases[0].stack_like);
    }

    #[test]
    fn plateau_peaks_at_construction_height() {
        let t = plateau(6, 50, 100);
        // At the hold point, ~50 blocks of 100..200 bytes are live.
        assert!(t.peak_live_requested() >= 50 * 100);
        assert!(t.peak_live_requested() <= 50 * 200 + 200);
    }

    #[test]
    fn two_phase_has_phase_markers() {
        let t = two_phase(7, 30);
        assert_eq!(t.phases(), vec![0, 1]);
        let parts = t.split_phases();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn large_churn_shards_stream_the_same_behaviour_as_the_whole_trace() {
        use dmm_core::manager::PolicyAllocator;
        use dmm_core::space::presets;
        use dmm_core::trace::{replay, replay_shards_config};

        let whole = large_churn(11, 3, 200);
        let shards: Vec<TraceShard> = large_churn_shards(11, 3, 200).collect();
        assert_eq!(shards.len(), 3);
        let shard_events: usize = shards.iter().map(|s| s.trace.len()).sum();
        assert_eq!(shard_events, whole.len());
        assert!(shards.iter().all(|s| s.boundary.is_closed()));
        // Identical per-window behaviour: the composed replay and the
        // whole-trace replay agree on the demand peak exactly.
        let cfg = presets::drr_paper();
        let whole_fs = replay(&whole, &mut PolicyAllocator::new(cfg.clone()).unwrap()).unwrap();
        let sharded = replay_shards_config(shards, &cfg).unwrap();
        assert_eq!(sharded.stats.peak_requested, whole_fs.peak_requested);
        assert_eq!(sharded.stats.stats.allocs, whole_fs.stats.allocs);
        // Streaming held at most one window of events resident.
        assert!(sharded.peak_resident_trace_bytes < whole.resident_bytes());
    }

    #[test]
    fn large_churn_shard_stream_is_deterministic_per_seed() {
        let a: Vec<TraceShard> = large_churn_shards(5, 2, 120).collect();
        let b: Vec<TraceShard> = large_churn_shards(5, 2, 120).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace, y.trace, "second pass must replay identically");
        }
        let c: Vec<TraceShard> = large_churn_shards(6, 2, 120).collect();
        assert_ne!(a[0].trace, c[0].trace);
    }

    #[test]
    fn adversarial_fragmentation_strands_holes_under_fit_policies() {
        use dmm_core::manager::PolicyAllocator;
        use dmm_core::space::presets;
        use dmm_core::trace::replay;

        let t = adversarial_fragmentation(13, 2, 120);
        assert_eq!(t.alloc_count(), t.free_count(), "windows drain fully");
        // A benign twin: the identical multiset of requests, but the small
        // blocks are freed only *after* the large run — no holes exist
        // when the large requests arrive.
        let mut b = Trace::builder();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..2 {
            let small = 24 + rng.gen_range(0..6usize) * 8;
            let run: Vec<u64> = (0..240).map(|_| b.alloc(small)).collect();
            let big: Vec<u64> = (0..120).map(|_| b.alloc(small * 2 + 8)).collect();
            for id in run.into_iter().chain(big) {
                b.free(id);
            }
        }
        let benign = b.finish().unwrap();
        for cfg in [presets::lea_like(), presets::kingsley_like()] {
            let adv = replay(&t, &mut PolicyAllocator::new(cfg.clone()).unwrap()).unwrap();
            let nice =
                replay(&benign, &mut PolicyAllocator::new(cfg.clone()).unwrap()).unwrap();
            let adv_ratio = adv.peak_footprint as f64 / t.peak_live_requested() as f64;
            let nice_ratio =
                nice.peak_footprint as f64 / benign.peak_live_requested() as f64;
            assert!(
                adv_ratio > nice_ratio,
                "{}: adversarial order must fragment worse than the benign \
                 order of the same requests ({adv_ratio:.3} vs {nice_ratio:.3})",
                cfg.name
            );
        }
    }

    #[test]
    fn adversarial_fragmentation_shards_match_the_whole_trace() {
        let whole = adversarial_fragmentation(21, 3, 80);
        let shards: Vec<TraceShard> = adversarial_fragmentation_shards(21, 3, 80).collect();
        assert_eq!(shards.len(), 3);
        assert_eq!(
            shards.iter().map(|s| s.trace.len()).sum::<usize>(),
            whole.len()
        );
        assert!(shards.iter().all(|s| s.boundary.is_closed()));
        // Determinism per seed.
        assert_eq!(
            adversarial_fragmentation(21, 3, 80),
            adversarial_fragmentation(21, 3, 80)
        );
        assert_ne!(
            adversarial_fragmentation(21, 3, 80),
            adversarial_fragmentation(22, 3, 80)
        );
    }

    #[test]
    fn bimodal_has_exactly_two_dominant_sizes() {
        let p = Profile::of(&bimodal(8, 100, 32, 2048));
        let top = p.histogram.top_k(2);
        let sizes: Vec<usize> = top.iter().map(|(s, _)| *s).collect();
        assert!(sizes.contains(&32) && sizes.contains(&2048));
    }
}
