//! Synthetic micro-workloads: small, targeted traces for unit tests,
//! property tests and policy ablations.
//!
//! Each generator is deterministic per seed and returns a validated
//! [`Trace`] directly (no application loop).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dmm_core::trace::Trace;

/// `n` allocations of a single `size`, freed FIFO afterwards.
pub fn uniform(n: usize, size: usize) -> Trace {
    let mut b = Trace::builder();
    let ids: Vec<u64> = (0..n).map(|_| b.alloc(size)).collect();
    for id in ids {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Alternating small/large allocations with interleaved lifetimes — the
/// mixed-size pattern that punishes fixed-class managers.
pub fn bimodal(seed: u64, n: usize, small: usize, large: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    let mut live: Vec<u64> = Vec::new();
    for i in 0..n {
        let size = if i % 2 == 0 { small } else { large };
        live.push(b.alloc(size));
        if live.len() > 8 && rng.gen_bool(0.5) {
            let idx = rng.gen_range(0..live.len());
            b.free(live.swap_remove(idx));
        }
    }
    for id in live {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Pure LIFO (stack-like) behaviour — the pattern Obstacks exploits.
pub fn stack_like(depth: usize, size: usize) -> Trace {
    let mut b = Trace::builder();
    let ids: Vec<u64> = (0..depth).map(|i| b.alloc(size + (i % 5) * 16)).collect();
    for id in ids.into_iter().rev() {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Ramp up to a plateau, hold, then ramp down — the Figure 5 DRR shape.
pub fn plateau(seed: u64, peak: usize, size: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..peak {
        live.push(b.alloc(size + rng.gen_range(0..size)));
    }
    // Hold with churn.
    for _ in 0..peak {
        let idx = rng.gen_range(0..live.len());
        b.free(live.swap_remove(idx));
        live.push(b.alloc(size + rng.gen_range(0..size)));
    }
    for id in live {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Highly variable sizes, random frees — the fragmentation-adversarial
/// pattern of the DRR case study.
pub fn fragmenting(seed: u64, n: usize, max_size: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..n {
        if live.is_empty() || rng.gen_bool(0.6) {
            live.push(b.alloc(rng.gen_range(16..=max_size.max(17))));
        } else {
            let idx = rng.gen_range(0..live.len());
            b.free(live.swap_remove(idx));
        }
    }
    for id in live {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

/// Two-phase trace: a stack-like phase 0 followed by a fragmenting
/// phase 1 — the rendering case study in miniature.
pub fn two_phase(seed: u64, n: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Trace::builder();
    b.phase(0);
    let ids: Vec<u64> = (0..n).map(|i| b.alloc(64 + (i % 7) * 32)).collect();
    for id in ids.into_iter().rev() {
        b.free(id);
    }
    b.phase(1);
    let mut live: Vec<u64> = Vec::new();
    for _ in 0..n {
        if live.is_empty() || rng.gen_bool(0.55) {
            live.push(b.alloc(rng.gen_range(100..4000)));
        } else {
            let idx = rng.gen_range(0..live.len());
            b.free(live.swap_remove(idx));
        }
    }
    for id in live {
        b.free(id);
    }
    b.finish().expect("generator produces valid traces")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_core::profile::Profile;

    #[test]
    fn all_generators_balance_allocs_and_frees() {
        let traces = [
            uniform(50, 64),
            bimodal(1, 100, 32, 2048),
            stack_like(40, 64),
            plateau(2, 60, 256),
            fragmenting(3, 200, 1500),
            two_phase(4, 50),
        ];
        for t in traces {
            assert_eq!(t.alloc_count(), t.free_count());
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(fragmenting(9, 100, 500), fragmenting(9, 100, 500));
        assert_ne!(fragmenting(9, 100, 500), fragmenting(10, 100, 500));
    }

    #[test]
    fn stack_like_profile_detects_lifo() {
        let p = Profile::of(&stack_like(30, 64));
        assert!(p.phases[0].stack_like);
        let p = Profile::of(&fragmenting(5, 200, 800));
        assert!(!p.phases[0].stack_like);
    }

    #[test]
    fn plateau_peaks_at_construction_height() {
        let t = plateau(6, 50, 100);
        // At the hold point, ~50 blocks of 100..200 bytes are live.
        assert!(t.peak_live_requested() >= 50 * 100);
        assert!(t.peak_live_requested() <= 50 * 200 + 200);
    }

    #[test]
    fn two_phase_has_phase_markers() {
        let t = two_phase(7, 30);
        assert_eq!(t.phases(), vec![0, 1]);
        let parts = t.split_phases();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn bimodal_has_exactly_two_dominant_sizes() {
        let p = Profile::of(&bimodal(8, 100, 32, 2048));
        let top = p.histogram.top_k(2);
        let sizes: Vec<usize> = top.iter().map(|(s, _)| *s).collect();
        assert!(sizes.contains(&32) && sizes.contains(&2048));
    }
}
